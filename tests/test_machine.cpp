/**
 * @file
 * Machine description tests: mesh shapes, routing geometry, Table 1
 * latencies, evaluation configurations.
 */

#include <gtest/gtest.h>

#include "harness/cli.hpp"
#include "machine/machine.hpp"

namespace raw {
namespace {

TEST(Machine, MeshShapes)
{
    struct Case
    {
        int n, rows, cols;
    };
    // The paper evaluates N = 1..32; the scaling study extends the
    // sweep to 64 and 128.  Shapes stay near-square.
    for (Case c : {Case{1, 1, 1}, Case{2, 1, 2}, Case{4, 2, 2},
                   Case{8, 2, 4}, Case{16, 4, 4}, Case{32, 4, 8},
                   Case{64, 8, 8}, Case{128, 8, 16}}) {
        MachineConfig m = MachineConfig::base(c.n);
        EXPECT_EQ(m.rows, c.rows) << "n=" << c.n;
        EXPECT_EQ(m.cols, c.cols) << "n=" << c.n;
        EXPECT_EQ(m.rows * m.cols, c.n);
    }
}

TEST(Machine, Table1Latencies)
{
    MachineConfig m = MachineConfig::base(4);
    EXPECT_EQ(m.latency(FuOp::kIntAdd), 1);
    EXPECT_EQ(m.latency(FuOp::kIntMul), 12);
    EXPECT_EQ(m.latency(FuOp::kIntDiv), 35);
    EXPECT_EQ(m.latency(FuOp::kFpAdd), 2);
    EXPECT_EQ(m.latency(FuOp::kFpMul), 4);
    EXPECT_EQ(m.latency(FuOp::kFpDiv), 12);
    EXPECT_EQ(m.latency(FuOp::kLoad), 2) << "cache hit";
}

TEST(Machine, Configs)
{
    EXPECT_EQ(MachineConfig::base(8).num_registers, 32);
    EXPECT_GT(MachineConfig::inf_reg(8).num_registers, 1024);
    MachineConfig one = MachineConfig::one_cycle(8);
    EXPECT_EQ(one.latency(FuOp::kIntDiv), 1);
    EXPECT_EQ(one.latency(FuOp::kLoad), 1);
    EXPECT_NE(MachineConfig::base(8).name(),
              MachineConfig::inf_reg(8).name());
}

TEST(Machine, Distance)
{
    MachineConfig m = MachineConfig::base(16); // 4x4
    EXPECT_EQ(m.distance(0, 0), 0);
    EXPECT_EQ(m.distance(0, 3), 3);
    EXPECT_EQ(m.distance(0, 15), 6);
    EXPECT_EQ(m.distance(5, 10), 2);
    EXPECT_EQ(m.distance(5, 10), m.distance(10, 5));
}

TEST(Machine, DimensionOrderedNextHop)
{
    MachineConfig m = MachineConfig::base(16); // 4x4
    // X (columns) first, then Y (rows).
    EXPECT_EQ(m.next_hop(0, 3), Dir::kEast);
    EXPECT_EQ(m.next_hop(3, 0), Dir::kWest);
    EXPECT_EQ(m.next_hop(0, 12), Dir::kSouth);
    EXPECT_EQ(m.next_hop(12, 0), Dir::kNorth);
    EXPECT_EQ(m.next_hop(0, 5), Dir::kEast) << "X before Y";
    EXPECT_EQ(m.next_hop(7, 7), Dir::kProc);
    // Walking next_hop always terminates in exactly distance steps.
    for (int a = 0; a < 16; a++) {
        for (int b = 0; b < 16; b++) {
            int cur = a, steps = 0;
            while (cur != b) {
                cur = m.neighbor(cur, m.next_hop(cur, b));
                ASSERT_GE(cur, 0);
                ASSERT_LE(++steps, m.distance(a, b));
            }
            EXPECT_EQ(steps, m.distance(a, b));
        }
    }
}

TEST(Machine, Neighbors)
{
    MachineConfig m = MachineConfig::base(4); // 2x2
    EXPECT_EQ(m.neighbor(0, Dir::kEast), 1);
    EXPECT_EQ(m.neighbor(0, Dir::kSouth), 2);
    EXPECT_EQ(m.neighbor(0, Dir::kNorth), -1) << "off-mesh";
    EXPECT_EQ(m.neighbor(0, Dir::kWest), -1);
    EXPECT_EQ(m.neighbor(3, Dir::kNorth), 1);
    EXPECT_EQ(m.neighbor(0, Dir::kProc), 0);
}

TEST(Machine, OppositeDirections)
{
    EXPECT_EQ(opposite(Dir::kNorth), Dir::kSouth);
    EXPECT_EQ(opposite(Dir::kEast), Dir::kWest);
    EXPECT_EQ(opposite(opposite(Dir::kWest)), Dir::kWest);
}

TEST(Machine, ValidateRejectsBadShapes)
{
    MachineConfig m = MachineConfig::base(4);
    m.rows = 3;
    EXPECT_THROW(m.validate(), PanicError);
}

TEST(Machine, LargeMeshValidation)
{
    // The scaling-study meshes validate; anything past the 10-bit
    // dyn_header tile field (1024) does not.
    EXPECT_NO_THROW(MachineConfig::base(64).validate());
    EXPECT_NO_THROW(MachineConfig::base(128).validate());
    EXPECT_NO_THROW(MachineConfig::base(1024).validate());
    MachineConfig m = MachineConfig::base(1024);
    m.n_tiles = 2048;
    m.rows = 32;
    m.cols = 64;
    EXPECT_THROW(m.validate(), PanicError);
}

TEST(MachineDeathTest, TilesFlagRejectsBadCounts)
{
    // --tiles goes through cli::parse_tiles in every driver: usage
    // errors exit 2 before any compile starts.
    EXPECT_EXIT(cli::parse_tiles("rawcc", "48", "--tiles"),
                ::testing::ExitedWithCode(2),
                "a power-of-two tile count in 1\\.\\.1024");
    EXPECT_EXIT(cli::parse_tiles("rawcc", "2048", "--tiles"),
                ::testing::ExitedWithCode(2),
                "a power-of-two tile count in 1\\.\\.1024");
    EXPECT_EXIT(cli::parse_tiles("rawcc", "0", "--tiles"),
                ::testing::ExitedWithCode(2),
                "a power-of-two tile count in 1\\.\\.1024");
    EXPECT_EXIT(cli::parse_tiles("rawcc", "64x", "--tiles"),
                ::testing::ExitedWithCode(2), "an integer");
    EXPECT_EQ(cli::parse_tiles("rawcc", "64", "--tiles"), 64);
    EXPECT_EQ(cli::parse_tiles("rawcc", "128", "--tiles"), 128);
    EXPECT_EQ(cli::parse_tiles("rawcc", "1024", "--tiles"), 1024);
}

} // namespace
} // namespace raw
