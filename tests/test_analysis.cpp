/**
 * @file
 * Analysis tests: inter-block liveness, control replication, and the
 * task graph builder (nodes, pins, edges, disambiguation).
 */

#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "analysis/liveness.hpp"
#include "analysis/replication.hpp"
#include "analysis/taskgraph.hpp"
#include "frontend/lower.hpp"
#include "frontend/parser.hpp"
#include "transform/congruence.hpp"
#include "transform/constfold.hpp"
#include "transform/rename.hpp"

namespace raw {
namespace {

ValueId
var_named(const Function &fn, const std::string &name)
{
    for (ValueId v : fn.var_ids())
        if (fn.values[v].name == name)
            return v;
    return kNoValue;
}

Function
prepare(const char *src)
{
    Function fn = lower_program(parse_program(src));
    constfold_function(fn);
    rename_function(fn);
    return fn;
}

TEST(Liveness, LoopCarriedVariableLiveAroundLoop)
{
    Function fn = prepare(R"(
int i; int s;
s = 0;
for (i = 0; i < 8; i = i + 1) { s = s + i; }
print(s);
)");
    VarLiveness live(fn);
    ValueId s = var_named(fn, "s");
    ASSERT_NE(s, kNoValue);
    // s is live out of every block on the loop path (it is read in
    // the body and by the epilogue store).
    int live_blocks = 0;
    for (size_t b = 0; b < fn.blocks.size(); b++)
        if (live.live_out(static_cast<int>(b), s))
            live_blocks++;
    EXPECT_GE(live_blocks, 2);
}

TEST(Liveness, DeadAfterLastUse)
{
    Function fn = prepare(R"(
int a; int b;
a = 5;
b = a + 1;
print(b);
)");
    VarLiveness live(fn);
    ValueId a = var_named(fn, "a");
    // Single block: `a` is not live out (the epilogue stores happen
    // within the same block).
    EXPECT_FALSE(live.live_out(0, a));
}

TEST(Replication, LoopCountersReplicate)
{
    Function fn = prepare(R"(
int A[16];
int i;
for (i = 0; i < 16; i = i + 1) { A[i] = i; }
)");
    ReplicationAnalysis repl(fn, 8, 12, true);
    ValueId i = var_named(fn, "i");
    EXPECT_TRUE(repl.var_replicated(i));
    // The loop header's branch is computed locally everywhere.
    int replicated_branches = 0;
    for (size_t b = 0; b < fn.blocks.size(); b++)
        if (fn.blocks[b].terminator().op == Op::kBranch &&
            repl.branch_replicated(static_cast<int>(b)))
            replicated_branches++;
    EXPECT_GE(replicated_branches, 1);
}

TEST(Replication, DataDependentConditionsBroadcast)
{
    Function fn = prepare(R"(
int A[16];
int x;
x = A[3];
if (x > 0) { A[0] = 1; } else { A[0] = 2; }
)");
    ReplicationAnalysis repl(fn, 8, 12, true);
    ValueId x = var_named(fn, "x");
    EXPECT_FALSE(repl.var_replicated(x)) << "x comes from memory";
    for (size_t b = 0; b < fn.blocks.size(); b++)
        if (fn.blocks[b].terminator().op == Op::kBranch)
            EXPECT_FALSE(repl.branch_replicated(static_cast<int>(b)));
}

TEST(Replication, FloatVariablesNeverReplicate)
{
    Function fn = prepare(R"(
float f;
f = 1.0;
int g;
g = 2;
print(f);
print(g);
)");
    ReplicationAnalysis repl(fn, 8, 12, true);
    EXPECT_FALSE(repl.var_replicated(var_named(fn, "f")));
}

TEST(Replication, DisabledSwitch)
{
    Function fn = prepare(R"(
int A[16];
int i;
for (i = 0; i < 16; i = i + 1) { A[i] = i; }
)");
    ReplicationAnalysis repl(fn, 8, 12, false);
    EXPECT_EQ(repl.num_replicated_vars(), 0);
    for (size_t b = 0; b < fn.blocks.size(); b++)
        EXPECT_FALSE(repl.branch_replicated(static_cast<int>(b)));
}

TEST(Replication, ClonedOrderDefinesBeforeUses)
{
    Function fn = prepare(R"(
int A[64];
int i; int j;
for (i = 0; i < 64; i = i + 4) {
  for (j = 0; j < 4; j = j + 1) {
    A[i + j] = i;
  }
}
)");
    ReplicationAnalysis repl(fn, 8, 12, true);
    for (size_t b = 0; b < fn.blocks.size(); b++) {
        const std::vector<int> &order =
            repl.cloned_instrs(static_cast<int>(b));
        std::set<ValueId> defined;
        for (int k : order) {
            const Instr &in = fn.blocks[b].instrs[k];
            for (int s = 0; s < in.num_srcs(); s++) {
                ValueId v = in.src[s];
                if (!fn.values[v].is_var)
                    EXPECT_TRUE(defined.count(v))
                        << "temp used before cloned def, block " << b;
            }
            if (in.has_dst() && !fn.values[in.dst].is_var)
                defined.insert(in.dst);
        }
    }
}

struct GraphParts
{
    Function fn;
    std::unique_ptr<ReplicationAnalysis> repl;
    std::unique_ptr<VarLiveness> live;
    HomeMap homes;
    std::unique_ptr<TaskGraph> graph;
    int block = 0;
};

GraphParts
build_graph(const char *src, int n_tiles, int block = 0)
{
    GraphParts g;
    g.fn = prepare(src);
    g.repl = std::make_unique<ReplicationAnalysis>(g.fn, 8, 12, true);
    g.live = std::make_unique<VarLiveness>(g.fn);
    g.homes.n_tiles = n_tiles;
    g.homes.var_home.assign(g.fn.values.size(), 0);
    int next = 0;
    for (ValueId v : g.fn.var_ids())
        if (!g.repl->var_replicated(v)) {
            g.homes.var_home[v] = next;
            next = (next + 1) % n_tiles;
        }
    int64_t off = 0;
    for (const ArrayInfo &a : g.fn.arrays) {
        g.homes.array_base.push_back(off);
        off += a.size();
    }
    MachineConfig m = MachineConfig::base(n_tiles);
    CongruenceMap cong(g.fn, block);
    g.block = block;
    g.graph = std::make_unique<TaskGraph>(g.fn, block, m, cong,
                                          *g.repl, *g.live, g.homes);
    return g;
}

TEST(TaskGraph, StaticRefsArePinnedToHomes)
{
    GraphParts g = build_graph(R"(
int A[8];
A[1] = 10;
A[6] = 20;
)",
                               4);
    int pinned = 0;
    for (const TGNode &nd : g.graph->nodes()) {
        if (nd.kind != TGKind::kInstr)
            continue;
        const Instr &in = g.fn.blocks[0].instrs[nd.instr];
        if (in.op == Op::kStore && in.array == 0) {
            EXPECT_GE(nd.pin, 0);
            pinned++;
        }
    }
    EXPECT_EQ(pinned, 2);
}

TEST(TaskGraph, DisjointExactRefsUnordered)
{
    GraphParts g = build_graph(R"(
int A[8];
A[1] = 10;
A[2] = 20;
)",
                               4);
    // The two stores hit provably different addresses: no ordering
    // edge between them.
    std::vector<int> stores;
    for (size_t i = 0; i < g.graph->nodes().size(); i++) {
        const TGNode &nd = g.graph->nodes()[i];
        if (nd.kind == TGKind::kInstr &&
            g.fn.blocks[0].instrs[nd.instr].op == Op::kStore &&
            g.fn.blocks[0].instrs[nd.instr].array == 0)
            stores.push_back(static_cast<int>(i));
    }
    ASSERT_EQ(stores.size(), 2u);
    for (const TGEdge &e : g.graph->edges())
        EXPECT_FALSE(e.from == stores[0] && e.to == stores[1]);
}

TEST(TaskGraph, SameAddressRefsOrdered)
{
    GraphParts g = build_graph(R"(
int A[8];
int x;
A[1] = 10;
x = A[1];
print(x);
)",
                               4);
    int store = -1, load = -1;
    for (size_t i = 0; i < g.graph->nodes().size(); i++) {
        const TGNode &nd = g.graph->nodes()[i];
        if (nd.kind != TGKind::kInstr)
            continue;
        Op op = g.fn.blocks[0].instrs[nd.instr].op;
        if (op == Op::kStore &&
            g.fn.blocks[0].instrs[nd.instr].array == 0)
            store = static_cast<int>(i);
        if (op == Op::kLoad)
            load = static_cast<int>(i);
    }
    ASSERT_GE(store, 0);
    ASSERT_GE(load, 0);
    bool ordered = false;
    for (const TGEdge &e : g.graph->edges())
        if (e.from == store && e.to == load)
            ordered = true;
    EXPECT_TRUE(ordered);
}

TEST(TaskGraph, ImportNodesForLiveInReads)
{
    GraphParts g = build_graph(R"(
int a; int b;
a = 1;
b = 2;
if (a > 0) {
  b = a + b;
}
print(b);
)",
                               2, /*block=*/1);
    // Block 1 (the then-block) reads a and b as live-ins.
    int imports = 0;
    for (const TGNode &nd : g.graph->nodes())
        if (nd.kind == TGKind::kImport) {
            imports++;
            EXPECT_EQ(nd.cost, 0);
            EXPECT_GE(nd.pin, 0);
        }
    EXPECT_GE(imports, 1);
}

TEST(TaskGraph, PrintsChained)
{
    GraphParts g = build_graph(R"(
print(1);
print(2);
print(3);
)",
                               4);
    std::vector<int> prints;
    for (size_t i = 0; i < g.graph->nodes().size(); i++) {
        const TGNode &nd = g.graph->nodes()[i];
        if (nd.kind == TGKind::kInstr &&
            g.fn.blocks[0].instrs[nd.instr].op == Op::kPrint)
            prints.push_back(static_cast<int>(i));
    }
    ASSERT_EQ(prints.size(), 3u);
    int order_edges = 0;
    for (const TGEdge &e : g.graph->edges())
        if (e.kind == DepKind::kOrder)
            order_edges++;
    EXPECT_GE(order_edges, 2);
}

TEST(TaskGraph, Acyclic)
{
    // Note: the loop is rolled and `x` is data-dependent, so the body
    // block exercises imports, write-backs and arithmetic together
    // (memory refs would need the orchestrater's dynamic rewrite
    // first, which is tested end-to-end elsewhere).
    GraphParts g = build_graph(R"(
int i; int s; int x;
s = 0;
x = 3;
for (i = 0; i < 16; i = i + 1) { s = s + x; x = x * 2 + s; }
print(s);
)",
                               4, 2);
    // Kahn's algorithm visits every node.
    const int n = static_cast<int>(g.graph->nodes().size());
    std::vector<int> indeg(n, 0);
    for (int i = 0; i < n; i++)
        indeg[i] = static_cast<int>(g.graph->preds(i).size());
    std::vector<int> work;
    for (int i = 0; i < n; i++)
        if (indeg[i] == 0)
            work.push_back(i);
    int seen = 0;
    while (!work.empty()) {
        int v = work.back();
        work.pop_back();
        seen++;
        for (int s : g.graph->succs(v))
            if (--indeg[s] == 0)
                work.push_back(s);
    }
    EXPECT_EQ(seen, n);
}

} // namespace
} // namespace raw
