/**
 * @file
 * Option-matrix tests: every compiler knob (ablation switches,
 * machine configurations, scheduling policies) must preserve
 * bit-exact results — options trade performance, never correctness.
 */

#include <gtest/gtest.h>

#include "harness/harness.hpp"

namespace raw {
namespace {

/** A compact kernel exercising loops, guards, FP and memory. */
const char *kKernel = R"(
float A[48];
int P[48];
int i; float acc; int hits;
for (i = 0; i < 48; i = i + 1) {
  A[i] = (float)((i * 5) % 9) * 0.75 + 0.1;
  P[i] = (i * 11) % 7;
}
acc = 0.0;
hits = 0;
for (i = 1; i < 47; i = i + 1) {
  if (P[i] > 3) {
    acc = acc + A[i-1] * A[i+1];
    hits = hits + 1;
  }
}
print(acc);
print(hits);
)";

struct OptionCase
{
    const char *name;
    CompilerOptions opts;
};

std::vector<OptionCase>
option_matrix()
{
    std::vector<OptionCase> cases;
    cases.push_back({"default", CompilerOptions{}});
    {
        CompilerOptions o;
        o.unroll.enable = false;
        cases.push_back({"no-unroll", o});
    }
    {
        CompilerOptions o;
        o.orch.enable_replication = false;
        cases.push_back({"no-replication", o});
    }
    {
        CompilerOptions o;
        o.orch.fold_ports = false;
        cases.push_back({"no-port-fold", o});
    }
    {
        CompilerOptions o;
        o.smart_homes = true;
        cases.push_back({"smart-homes", o});
    }
    {
        CompilerOptions o;
        o.orch.partition.cluster_mode = ClusterMode::kUnitNodes;
        cases.push_back({"no-clustering", o});
    }
    {
        CompilerOptions o;
        o.orch.partition.place_mode = PlaceMode::kArbitrary;
        cases.push_back({"arbitrary-placement", o});
    }
    {
        CompilerOptions o;
        o.orch.partition.place_mode = PlaceMode::kAnneal;
        cases.push_back({"annealed-placement", o});
    }
    {
        CompilerOptions o;
        o.orch.sched.fifo_priority = true;
        cases.push_back({"fifo-priority", o});
    }
    {
        CompilerOptions o;
        o.orch.sched.level_weight = 1;
        o.orch.sched.fertility_weight = 50;
        cases.push_back({"fertility-heavy", o});
    }
    {
        CompilerOptions o;
        o.max_block_len = 40;
        cases.push_back({"tiny-blocks", o});
    }
    return cases;
}

class OptionMatrix
    : public ::testing::TestWithParam<std::tuple<int, int>>
{};

TEST_P(OptionMatrix, BitExactUnderAnyOptions)
{
    auto [case_idx, tiles] = GetParam();
    OptionCase oc = option_matrix()[case_idx];
    RunResult base = run_baseline(kKernel, "A");
    RunResult par = run_rawcc(kKernel, MachineConfig::base(tiles),
                              "A", oc.opts);
    EXPECT_EQ(par.prints, base.prints) << oc.name;
    EXPECT_EQ(par.check_words, base.check_words) << oc.name;
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, OptionMatrix,
    ::testing::Combine(::testing::Range(0, 11),
                       ::testing::Values(2, 7, 16)),
    [](const ::testing::TestParamInfo<std::tuple<int, int>> &info) {
        std::string name =
            option_matrix()[std::get<0>(info.param)].name;
        for (char &c : name)
            if (c == '-')
                c = '_';
        return name + "_n" + std::to_string(std::get<1>(info.param));
    });

TEST(Options, MachineConfigsBitExact)
{
    RunResult base = run_baseline(kKernel, "A");
    for (int n : {4, 16}) {
        RunResult inf = run_rawcc(kKernel, MachineConfig::inf_reg(n),
                                  "A");
        EXPECT_EQ(inf.prints, base.prints) << "inf-reg n=" << n;
        RunResult one = run_rawcc(
            kKernel, MachineConfig::one_cycle(n), "A");
        EXPECT_EQ(one.prints, base.prints) << "1-cycle n=" << n;
    }
}

TEST(Options, PortFoldingFoldsAndHelps)
{
    CompilerOptions on, off;
    off.orch.fold_ports = false;
    CompileOutput a =
        compile_source(kKernel, MachineConfig::base(8), on);
    CompileOutput b =
        compile_source(kKernel, MachineConfig::base(8), off);
    EXPECT_GT(a.stats.folded_port_ops, 0);
    EXPECT_EQ(b.stats.folded_port_ops, 0);
    EXPECT_LT(a.stats.static_instrs, b.stats.static_instrs);
    Simulator sa(a.program), sb(b.program);
    EXPECT_LE(sa.run().cycles, sb.run().cycles);
}

TEST(Options, SmartHomesKeepsVotes)
{
    CompilerOptions o;
    o.smart_homes = true;
    CompileOutput out =
        compile_source(kKernel, MachineConfig::base(8), o);
    Simulator sim(out.program);
    RunResult base = run_baseline(kKernel);
    EXPECT_EQ(sim.run().print_text(), base.prints);
}

} // namespace
} // namespace raw
