/**
 * @file
 * Golden determinism suite: replay the recorded simulator outputs
 * under tests/goldens/ against the current tree and require
 * byte-for-byte identical summaries (cycle counts, aggregate
 * counters, profile sums, print traces).  Every point is run both
 * serially and fanned over the parallel harness, pinning the promise
 * that performance work — fast-path simulator core, incremental
 * placement cost, multi-threaded benches — never changes results.
 *
 * The goldens were recorded from the pre-optimization (PR 1)
 * simulator by tools/golden_gen.cpp.  If this suite fails after a
 * perf change, the change is wrong; regenerate goldens only for an
 * intentional semantic change.
 */

#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "harness/harness.hpp"
#include "harness/parallel.hpp"
#include "rawcc/schedcache.hpp"

namespace raw {
namespace {

struct GoldenPoint
{
    const char *bench;
    int tiles;
    FaultConfig faults;
    /** Schedule-quality optimizer (--sched-iters 3 --route-select). */
    bool sched_opt = false;
    /** Cross-tile modulo scheduling (--modulo). */
    bool modulo = false;
};

// Must stay in sync with kPoints in tools/golden_gen.cpp.
const GoldenPoint kPoints[] = {
    {"life", 1, {}},      {"life", 4, {}},      {"life", 16, {}},
    {"cholesky", 1, {}},  {"cholesky", 4, {}},  {"cholesky", 16, {}},
    {"mxm", 1, {}},       {"mxm", 4, {}},       {"mxm", 16, {}},
    {"jacobi", 1, {}},    {"jacobi", 4, {}},    {"jacobi", 16, {}},
    {"jacobi", 4, {0.01, 20, 42}},
    {"jacobi", 4, {0.02, 9, 7, 0.05, 3, 0.05, 6, 0.02}},
    {"life", 16, {}, true},
    {"cholesky", 16, {}, true},
    {"mxm", 16, {}, true},
    {"jacobi", 16, {}, true},
    {"life", 16, {}, false, true},
    {"jacobi", 16, {}, false, true},
    {"mxm", 16, {}, false, true},
};

std::string
point_name(const GoldenPoint &p)
{
    std::string name =
        std::string(p.bench) + "_n" + std::to_string(p.tiles);
    if (p.sched_opt)
        name += "_sched";
    if (p.modulo)
        name += "_mod";
    if (p.faults.multi_channel())
        name += "_mfault";
    else if (p.faults.miss_rate > 0)
        name += "_fault";
    return name;
}

std::string
read_golden(const GoldenPoint &p)
{
    std::string path =
        std::string(RAW_GOLDEN_DIR) + "/" + point_name(p) + ".golden";
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in) << "missing golden file " << path;
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

std::string
run_point(const GoldenPoint &p, int jobs = 1,
          const std::string &cache_dir = {})
{
    const BenchmarkProgram &prog = benchmark(p.bench);
    CompilerOptions opts;
    if (p.sched_opt) {
        opts.orch.sched.sched_iters = 3;
        opts.orch.sched.route_select = true;
    }
    opts.orch.sched.modulo = p.modulo;
    opts.orch.jobs = jobs;
    opts.orch.cache_dir = cache_dir;
    RunResult r =
        run_rawcc(prog.source, MachineConfig::base(p.tiles),
                  prog.check_array, opts, p.faults);
    return golden_summary(p.bench, p.tiles, p.faults, r.sim);
}

TEST(GoldenDeterminism, SerialMatchesRecordedGoldens)
{
    for (const GoldenPoint &p : kPoints)
        EXPECT_EQ(run_point(p), read_golden(p)) << point_name(p);
}

TEST(GoldenDeterminism, ParallelHarnessMatchesRecordedGoldens)
{
    // Same points, fanned over worker threads: each job owns its
    // compiler and simulator, so results must not depend on the
    // thread count or on interleaving.
    const int n = static_cast<int>(std::size(kPoints));
    std::vector<std::string> got(n);
    run_parallel(n, 4, [&](int i) { got[i] = run_point(kPoints[i]); });
    for (int i = 0; i < n; i++)
        EXPECT_EQ(got[i], read_golden(kPoints[i]))
            << point_name(kPoints[i]);
}

TEST(GoldenDeterminism, ParallelCompileColdAndWarmCacheMatch)
{
    // The full matrix the compile-throughput layer promises: every
    // golden point, compiled serially and with per-block worker
    // threads, with a cold cache and a warm one (in-memory dropped
    // between sweeps so the warm pass replays from disk), must stay
    // byte-identical to the recorded output.
    namespace fs = std::filesystem;
    for (int jobs : {1, 4}) {
        fs::path dir = fs::path(::testing::TempDir()) /
                       ("golden_rsc_j" + std::to_string(jobs) + "_" +
                        std::to_string(::getpid()));
        fs::remove_all(dir);
        fs::create_directories(dir);
        for (const char *pass : {"cold", "warm"}) {
            SchedCache::instance().clear_memory();
            for (const GoldenPoint &p : kPoints)
                EXPECT_EQ(run_point(p, jobs, dir.string()),
                          read_golden(p))
                    << point_name(p) << " jobs=" << jobs << " "
                    << pass;
        }
        fs::remove_all(dir);
    }
}

TEST(GoldenDeterminism, ResolveJobs)
{
    EXPECT_EQ(resolve_jobs(1), 1);
    EXPECT_EQ(resolve_jobs(7), 7);
    EXPECT_GE(resolve_jobs(0), 1);
    EXPECT_GE(resolve_jobs(-3), 1);
}

} // namespace
} // namespace raw
