/**
 * @file
 * Whole-benchmark correctness: every Table 2 program must produce
 * bit-identical results under RAWCC at every machine size as under
 * the sequential baseline, and should show speedup at 16+ tiles for
 * the parallel-friendly programs.
 */

#include <gtest/gtest.h>

#include "harness/harness.hpp"

namespace raw {
namespace {

class BenchmarkCorrectness
    : public ::testing::TestWithParam<std::tuple<std::string, int>>
{};

TEST_P(BenchmarkCorrectness, MatchesBaseline)
{
    const auto &[name, n] = GetParam();
    const BenchmarkProgram &prog = benchmark(name);
    double s = verified_speedup(prog, MachineConfig::base(n));
    RecordProperty("speedup", std::to_string(s));
    EXPECT_GT(s, 0.05) << name << " n=" << n;
}

INSTANTIATE_TEST_SUITE_P(
    Suite, BenchmarkCorrectness,
    ::testing::Combine(
        ::testing::Values("life", "vpenta", "cholesky", "tomcatv",
                          "fpppp-kernel", "mxm", "jacobi"),
        ::testing::Values(1, 2, 4, 8, 16, 32)),
    [](const ::testing::TestParamInfo<std::tuple<std::string, int>>
           &info) {
        std::string name = std::get<0>(info.param);
        for (char &c : name)
            if (c == '-')
                c = '_';
        return name + "_n" + std::to_string(std::get<1>(info.param));
    });

TEST(BenchmarkSpeedup, ParallelProgramsScale)
{
    for (const char *name : {"jacobi", "mxm", "fpppp-kernel"}) {
        const BenchmarkProgram &prog = benchmark(name);
        double s16 = verified_speedup(prog, MachineConfig::base(16));
        EXPECT_GT(s16, 2.0) << name;
    }
}

} // namespace
} // namespace raw
