/**
 * @file
 * Harness and benchmark-suite tests: the Table 2 program registry,
 * the fpppp generator, print-trace semantics, and verified_speedup.
 */

#include <gtest/gtest.h>

#include "harness/harness.hpp"
#include "harness/parallel.hpp"
#include "programs/fpppp_gen.hpp"
#include "support/error.hpp"

namespace raw {
namespace {

TEST(Programs, SuiteHasAllSevenBenchmarks)
{
    const auto &suite = benchmark_suite();
    ASSERT_EQ(suite.size(), 7u);
    const char *expected[] = {"life",    "vpenta",       "cholesky",
                              "tomcatv", "fpppp-kernel", "mxm",
                              "jacobi"};
    for (size_t i = 0; i < suite.size(); i++) {
        EXPECT_EQ(suite[i].name, expected[i]);
        EXPECT_FALSE(suite[i].source.empty());
        EXPECT_FALSE(suite[i].check_array.empty());
        EXPECT_FALSE(suite[i].description.empty());
    }
}

TEST(Programs, LookupByName)
{
    EXPECT_EQ(benchmark("jacobi").name, "jacobi");
    EXPECT_THROW(benchmark("doom"), FatalError);
}

TEST(Programs, FppppGeneratorDeterministic)
{
    std::string a = generate_fpppp(48, 220, 7);
    std::string b = generate_fpppp(48, 220, 7);
    std::string c = generate_fpppp(48, 220, 8);
    EXPECT_EQ(a, b);
    EXPECT_NE(a, c);
    EXPECT_NE(a.find("print(cs);"), std::string::npos);
}

TEST(Programs, FppppScalesWithParameters)
{
    RunResult small = run_baseline(generate_fpppp(16, 40, 1));
    RunResult big = run_baseline(generate_fpppp(48, 220, 1));
    EXPECT_GT(big.cycles, small.cycles * 2);
}

TEST(Harness, RunResultsPopulated)
{
    const char *src = "print(1 + 2);";
    RunResult base = run_baseline(src);
    EXPECT_EQ(base.prints, "3\n");
    EXPECT_GT(base.cycles, 0);
    RunResult par = run_rawcc(src, MachineConfig::base(2));
    EXPECT_EQ(par.prints, "3\n");
    EXPECT_GT(par.stats.static_instrs, 0);
}

TEST(Harness, VerifiedSpeedupPositive)
{
    BenchmarkProgram tiny;
    tiny.name = "tiny";
    tiny.check_array = "A";
    tiny.source = R"(
int A[16];
int i;
for (i = 0; i < 16; i = i + 1) { A[i] = i * i; }
print(A[15]);
)";
    double s = verified_speedup(tiny, MachineConfig::base(4));
    EXPECT_GT(s, 0.1);
    EXPECT_LT(s, 100.0);
}

TEST(Harness, PrintOrderAcrossIterations)
{
    // Two prints inside a loop must interleave in iteration order,
    // even though they may retire on different tiles at different
    // times.
    const char *src = R"(
int A[8];
int i;
for (i = 0; i < 8; i = i + 1) { A[i] = i; }
for (i = 0; i < 3; i = i + 1) {
  print(A[i]);
  print(A[i + 4]);
}
)";
    RunResult base = run_baseline(src);
    EXPECT_EQ(base.prints, "0\n4\n1\n5\n2\n6\n");
    for (int n : {2, 4, 8}) {
        RunResult par = run_rawcc(src, MachineConfig::base(n));
        EXPECT_EQ(par.prints, base.prints) << "n=" << n;
    }
}

TEST(Harness, FloatPrintsRenderConsistently)
{
    const char *src = "print(0.5); print(-2.25); print(1.0 / 3.0);";
    RunResult base = run_baseline(src);
    RunResult par = run_rawcc(src, MachineConfig::base(2));
    EXPECT_EQ(base.prints, par.prints);
}

TEST(Parallel, CollectIsolatesFailingSlot)
{
    // A job that throws fails only its own slot; every sibling still
    // runs to completion and the pool joins cleanly.
    std::vector<int> ran(4, 0);
    std::vector<std::string> errs =
        run_parallel_collect(4, 2, [&](int i) {
            if (i == 1)
                throw FatalError("slot one exploded");
            ran[i] = 1;
        });
    ASSERT_EQ(errs.size(), 4u);
    EXPECT_NE(errs[1].find("slot one exploded"), std::string::npos);
    for (int i : {0, 2, 3}) {
        EXPECT_TRUE(errs[i].empty()) << "slot " << i;
        EXPECT_EQ(ran[i], 1) << "slot " << i;
    }
}

TEST(Parallel, CollectHandlesPanicAndInlinePath)
{
    // Inline path (n_threads = 1) gets the same per-slot capture:
    // later jobs still run after an earlier one throws.
    std::vector<int> ran(3, 0);
    std::vector<std::string> errs =
        run_parallel_collect(3, 1, [&](int i) {
            if (i == 0)
                panic("first job panicked");
            ran[i] = 1;
        });
    EXPECT_FALSE(errs[0].empty());
    EXPECT_TRUE(errs[1].empty());
    EXPECT_TRUE(errs[2].empty());
    EXPECT_EQ(ran[1], 1);
    EXPECT_EQ(ran[2], 1);
}

TEST(Parallel, RunParallelRethrowsFirstByIndex)
{
    std::vector<int> ran(4, 0);
    try {
        run_parallel(4, 2, [&](int i) {
            if (i == 2)
                throw FatalError("job two failed");
            ran[i] = 1;
        });
        FAIL() << "expected FatalError";
    } catch (const FatalError &e) {
        EXPECT_NE(std::string(e.what()).find("job two failed"),
                  std::string::npos);
    }
    // Siblings completed before the rethrow.
    EXPECT_EQ(ran[0], 1);
    EXPECT_EQ(ran[1], 1);
    EXPECT_EQ(ran[3], 1);
}

} // namespace
} // namespace raw
