/**
 * @file
 * End-to-end smoke of the real `rawcc serve` daemon (ctest label
 * serve-smoke): fork the binary, speak the line protocol over a Unix
 * socket, and walk the whole robustness surface in a few seconds —
 * compile (miss then hit), simulate, a deterministically forced
 * overload shed, and a SIGTERM drain that must answer every
 * outstanding request and exit 0.
 */

#include <gtest/gtest.h>

#include <signal.h>
#include <unistd.h>

#include <chrono>
#include <string>

#include "serve/client.hpp"
#include "support/error.hpp"

#ifndef RAWCC_BIN
#define RAWCC_BIN "rawcc"
#endif

namespace raw {
namespace serve {
namespace {

using Clock = std::chrono::steady_clock;

std::string
test_sock(const char *tag)
{
    return "/tmp/rawcc-serve-test-" + std::to_string(::getpid()) +
           "-" + tag + ".sock";
}

/** Poll the stats op until @p pred holds or @p ms elapse. */
template <typename Pred>
bool
wait_stats(ServeClient &c, int64_t ms, Pred pred)
{
    Clock::time_point deadline =
        Clock::now() + std::chrono::milliseconds(ms);
    while (Clock::now() < deadline) {
        Json st = c.request("{\"op\":\"stats\"}", 2000);
        if (pred(st))
            return true;
        ::usleep(10000);
    }
    return false;
}

TEST(ServeCli, CompileSimulateShedAndDrain)
{
    // One worker + depth-1 queue makes the overload scenario
    // deterministic: worker busy + queue full => third request shed.
    ServeDaemon d;
    d.start(RAWCC_BIN,
            {"--socket", test_sock("smoke"), "--workers", "1",
             "--queue-depth", "1", "--drain", "3000"});

    ServeClient ctl; // control-plane ops (inline: ping/stats)
    ctl.connect(d.endpoint());

    // -- liveness --------------------------------------------
    Json pong = ctl.request("{\"op\":\"ping\",\"id\":\"p\"}", 2000);
    EXPECT_TRUE(pong.bool_or("ok", false));
    EXPECT_EQ(pong.str_or("id", ""), "p");

    // -- compile: miss, then hit -----------------------------
    const std::string kCompile =
        "{\"op\":\"compile\",\"bench\":\"jacobi\",\"tiles\":4}";
    Json c1 = ctl.request(kCompile, 15000);
    ASSERT_TRUE(c1.bool_or("ok", false)) << c1.str_or("message", "");
    EXPECT_EQ(c1.str_or("cache", ""), "miss");
    EXPECT_GT(c1.int_or("static_instrs", 0), 0);
    std::string digest = c1.str_or("digest", "");
    EXPECT_EQ(digest.size(), 32u);

    Json c2 = ctl.request(kCompile, 15000);
    ASSERT_TRUE(c2.bool_or("ok", false));
    EXPECT_EQ(c2.str_or("cache", ""), "hit");
    EXPECT_EQ(c2.str_or("digest", ""), digest);

    // -- simulate (shares the compile cache entry) -----------
    Json sim = ctl.request(
        "{\"op\":\"simulate\",\"bench\":\"jacobi\",\"tiles\":4,"
        "\"checks\":{\"provenance\":true}}",
        15000);
    ASSERT_TRUE(sim.bool_or("ok", false))
        << sim.str_or("message", "");
    EXPECT_EQ(sim.str_or("cache", ""), "hit");
    EXPECT_GT(sim.int_or("cycles", 0), 0);
    EXPECT_EQ(sim.int_or("check_failures", -1), 0);
    EXPECT_NE(sim.str_or("prov_hash", "0000000000000000"),
              "0000000000000000");

    // -- structured errors keep the daemon alive -------------
    Json bad = ctl.request(
        "{\"op\":\"compile\",\"source\":\"syntax error\"}", 15000);
    EXPECT_FALSE(bad.bool_or("ok", true));
    EXPECT_EQ(bad.str_or("error", ""), "compile_error");
    EXPECT_TRUE(
        ctl.request("{\"op\":\"ping\"}", 2000).bool_or("ok", false));

    // -- forced overload shed --------------------------------
    // Stall 1 occupies the only worker; stall 2 fills the only
    // queue slot; the third work request must be shed.
    ServeClient stalls;
    stalls.connect(d.endpoint());
    int64_t base =
        ctl.request("{\"op\":\"stats\"}", 2000).int_or("admitted", 0);
    stalls.send_line("{\"op\":\"stall\",\"ms\":1500,\"id\":\"s1\"}");
    // Wait until s1 is admitted AND dequeued (worker holds it);
    // only then can s2 occupy the single queue slot instead of
    // racing the worker for it.
    ASSERT_TRUE(wait_stats(ctl, 2000, [&](const Json &st) {
        return st.int_or("admitted", 0) == base + 1 &&
               st.int_or("queue_depth", -1) == 0;
    })) << "worker never picked up the first stall";
    stalls.send_line("{\"op\":\"stall\",\"ms\":1500,\"id\":\"s2\"}");
    ASSERT_TRUE(wait_stats(ctl, 2000, [&](const Json &st) {
        return st.int_or("admitted", 0) == base + 2 &&
               st.int_or("queue_depth", 0) == 1;
    })) << "queue slot never filled";

    Json shed = ctl.request(kCompile, 5000);
    EXPECT_FALSE(shed.bool_or("ok", true));
    EXPECT_EQ(shed.str_or("error", ""), "overloaded");

    // -- SIGTERM drain ---------------------------------------
    // Queued stall s2 must be cancelled with a structured reply;
    // in-flight s1 finishes; the daemon exits 0.
    d.kill_with(SIGTERM);
    bool got_ok = false, got_cancelled = false;
    for (int i = 0; i < 2; i++) {
        std::string line;
        ASSERT_TRUE(stalls.recv_line(line, 5000))
            << "drain dropped a reply";
        Json r;
        std::string err;
        ASSERT_TRUE(json_parse(line, r, err)) << line;
        if (r.bool_or("ok", false))
            got_ok = true;
        else if (r.str_or("error", "") == "shutting_down")
            got_cancelled = true;
    }
    EXPECT_TRUE(got_ok) << "in-flight stall must complete";
    EXPECT_TRUE(got_cancelled)
        << "queued stall must be cancelled, not ghosted";

    EXPECT_EQ(d.stop(), 0) << "clean exit after drain";
}

TEST(ServeCli, RejectsGarbageLinesWithoutDying)
{
    ServeDaemon d;
    d.start(RAWCC_BIN, {"--socket", test_sock("garbage"),
                        "--workers", "1", "--queue-depth", "2"});
    ServeClient c;
    c.connect(d.endpoint());

    Json r1 = c.request("this is not json", 5000);
    EXPECT_EQ(r1.str_or("error", ""), "bad_request");
    Json r2 = c.request("[1,2,3]", 5000);
    EXPECT_EQ(r2.str_or("error", ""), "bad_request");
    Json r3 = c.request("{\"op\":\"simulate\",\"bench\":\"jacobi\","
                        "\"faults\":{\"miss_rate\":7.5}}",
                        5000);
    EXPECT_EQ(r3.str_or("error", ""), "sim_error");
    Json r4 = c.request("{\"op\":\"compile\",\"bench\":\"nope\"}",
                        5000);
    EXPECT_EQ(r4.str_or("error", ""), "compile_error");

    // Still alive and still serving after all of that.
    Json ok = c.request("{\"op\":\"compile\",\"bench\":\"life\","
                        "\"tiles\":4}",
                        15000);
    EXPECT_TRUE(ok.bool_or("ok", false));
    EXPECT_EQ(d.stop(), 0);
}

} // namespace
} // namespace serve
} // namespace raw
