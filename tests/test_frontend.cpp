/**
 * @file
 * Frontend tests: lexer, parser shapes, type checking, diagnostics,
 * and lowering structure.
 */

#include <gtest/gtest.h>

#include "frontend/lexer.hpp"
#include "frontend/lower.hpp"
#include "frontend/parser.hpp"
#include "ir/verifier.hpp"
#include "support/error.hpp"

namespace raw {
namespace {

TEST(Lexer, Tokens)
{
    auto toks = tokenize("int x = 42; // comment\nx = x << 2;");
    ASSERT_GE(toks.size(), 12u);
    EXPECT_EQ(toks[0].kind, Tok::kKwInt);
    EXPECT_EQ(toks[1].kind, Tok::kIdent);
    EXPECT_EQ(toks[1].text, "x");
    EXPECT_EQ(toks[2].kind, Tok::kAssign);
    EXPECT_EQ(toks[3].kind, Tok::kIntLit);
    EXPECT_EQ(toks[3].int_val, 42);
    EXPECT_EQ(toks.back().kind, Tok::kEof);
}

TEST(Lexer, FloatLiterals)
{
    auto toks = tokenize("0.25 1e3 2.5e-1 7f");
    EXPECT_EQ(toks[0].kind, Tok::kFloatLit);
    EXPECT_FLOAT_EQ(toks[0].float_val, 0.25f);
    EXPECT_FLOAT_EQ(toks[1].float_val, 1000.0f);
    EXPECT_FLOAT_EQ(toks[2].float_val, 0.25f);
    EXPECT_FLOAT_EQ(toks[3].float_val, 7.0f);
}

TEST(Lexer, BlockComments)
{
    auto toks = tokenize("a /* stuff \n more */ b");
    EXPECT_EQ(toks[0].text, "a");
    EXPECT_EQ(toks[1].text, "b");
    EXPECT_THROW(tokenize("/* unterminated"), FatalError);
    EXPECT_THROW(tokenize("int $bad;"), FatalError);
}

TEST(Parser, Declarations)
{
    Program p = parse_program("int x; float y = 1.5; int A[4][8];");
    ASSERT_EQ(p.stmts.size(), 3u);
    EXPECT_EQ(p.stmts[0]->kind, StmtKind::kDeclScalar);
    EXPECT_EQ(p.stmts[1]->kind, StmtKind::kDeclScalar);
    ASSERT_TRUE(p.stmts[1]->expr != nullptr);
    EXPECT_EQ(p.stmts[2]->kind, StmtKind::kDeclArray);
    EXPECT_EQ(p.stmts[2]->dims, (std::vector<int64_t>{4, 8}));
}

TEST(Parser, Precedence)
{
    Program p = parse_program("int x; x = 1 + 2 * 3;");
    const Expr &e = *p.stmts[1]->expr;
    ASSERT_EQ(e.kind, ExprKind::kBinary);
    EXPECT_EQ(e.op, "+");
    EXPECT_EQ(e.kids[1]->op, "*");
}

TEST(Parser, MixedTypeInsertscasts)
{
    Program p = parse_program("float y; y = 1 + 2.5;");
    const Expr &e = *p.stmts[1]->expr;
    EXPECT_EQ(e.type, Type::kF32);
    EXPECT_EQ(e.kids[0]->kind, ExprKind::kCast);
}

TEST(Parser, CanonicalForLoop)
{
    Program p = parse_program(
        "int i; int s; for (i = 0; i < 10; i = i + 2) { s = i; }");
    const Stmt &f = *p.stmts[2];
    EXPECT_EQ(f.kind, StmtKind::kFor);
    EXPECT_EQ(f.name, "i");
    EXPECT_EQ(f.step, 2);
    EXPECT_EQ(f.cmp, "<");
    EXPECT_EQ(f.body.size(), 1u);
}

TEST(Parser, DownwardForLoop)
{
    Program p = parse_program(
        "int i; int s; for (i = 9; i >= 0; i = i - 3) { s = i; }");
    EXPECT_EQ(p.stmts[2]->step, -3);
    EXPECT_EQ(p.stmts[2]->cmp, ">=");
}

TEST(Parser, Diagnostics)
{
    EXPECT_THROW(parse_program("x = 1;"), FatalError)
        << "undeclared variable";
    EXPECT_THROW(parse_program("int x; int x;"), FatalError)
        << "redeclaration";
    EXPECT_THROW(parse_program("int A[2]; int x; x = A[0][1];"),
                 FatalError)
        << "wrong subscript count";
    EXPECT_THROW(parse_program("float f; if (f) { }"), FatalError)
        << "non-int condition";
    EXPECT_THROW(parse_program("int i; for (i = 0; 3 < 4; i = i + 1) "
                               "{ }"),
                 FatalError)
        << "non-canonical for";
    EXPECT_THROW(parse_program("float y; y = 1.5 % 2.0;"), FatalError)
        << "float modulo";
    EXPECT_THROW(parse_program("int A[0];"), FatalError)
        << "zero-sized array";
}

TEST(Parser, SqrtBuiltin)
{
    Program p = parse_program("float y; y = sqrt(2.0);");
    const Expr &e = *p.stmts[1]->expr;
    EXPECT_EQ(e.kind, ExprKind::kUnary);
    EXPECT_EQ(e.op, "sqrt");
    // Integer arguments coerce to float.
    Program q = parse_program("float y; y = sqrt(4);");
    EXPECT_EQ(q.stmts[1]->expr->kids[0]->kind, ExprKind::kCast);
}

TEST(Lower, ProducesVerifiableIR)
{
    Program p = parse_program(R"(
int A[4][4];
int i; int j;
for (i = 0; i < 4; i = i + 1) {
  for (j = 0; j < 4; j = j + 1) {
    A[i][j] = i * 4 + j;
  }
}
if (A[1][1] > 0) { print(A[1][1]); }
while (i > 0) { i = i - 1; }
)");
    Function fn = lower_program(p);
    EXPECT_EQ(verify_function(fn), "");
    // Multi-dim subscripts flatten into one index per reference.
    bool found_store = false;
    for (const Block &b : fn.blocks)
        for (const Instr &in : b.instrs)
            if (in.op == Op::kStore)
                found_store = true;
    EXPECT_TRUE(found_store);
    // The hidden scalar write-back array exists.
    bool has_ivars = false;
    for (const ArrayInfo &a : fn.arrays)
        if (a.name == "__ivars")
            has_ivars = true;
    EXPECT_TRUE(has_ivars);
}

TEST(Lower, LogicalOpsNormalize)
{
    Program p = parse_program("int a; int b; int c; c = a && b;");
    Function fn = lower_program(p);
    // && lowers to compare-with-zero on both sides plus kAnd.
    int cmps = 0, ands = 0;
    for (const Instr &in : fn.blocks[0].instrs) {
        if (in.op == Op::kCmpNe)
            cmps++;
        if (in.op == Op::kAnd)
            ands++;
    }
    EXPECT_EQ(cmps, 2);
    EXPECT_EQ(ands, 1);
}

TEST(Lower, ForLoopCFGShape)
{
    Program p = parse_program(
        "int i; int s; for (i = 0; i < 8; i = i + 1) { s = s + i; }");
    Function fn = lower_program(p);
    // entry, header, body, exit (at least).
    EXPECT_GE(fn.blocks.size(), 4u);
    EXPECT_EQ(verify_function(fn), "");
}

} // namespace
} // namespace raw
