/**
 * @file
 * Fault-injection and self-checking tests: multi-channel fault
 * determinism, the static-ordering property under every channel, the
 * runtime provenance/FIFO checker (clean on real schedules, firing on
 * a hand-built violation), the exact wait-for-graph deadlock
 * diagnostic with its timeout backstop, the campaign driver, and CLI
 * validation of the fault flags.
 */

#include <cstdlib>
#include <string>

#include <sys/wait.h>

#include <gtest/gtest.h>

#include "harness/campaign.hpp"
#include "harness/harness.hpp"

namespace raw {
namespace {

PInstr
pi(Op op, int dst = -1, int a = -1, int b = -1)
{
    PInstr p;
    p.op = op;
    p.dst = dst;
    p.src[0] = a;
    p.src[1] = b;
    return p;
}

CompiledProgram
skeleton(int n)
{
    CompiledProgram cp;
    cp.machine = MachineConfig::base(n);
    cp.tiles.resize(n);
    cp.switches.resize(n);
    cp.total_words = 16;
    return cp;
}

SInstr
route1(Dir in, Dir out)
{
    SInstr s;
    s.k = SInstr::K::kRoute;
    s.routes = {
        {in, static_cast<uint8_t>(1u << static_cast<int>(out)), -1}};
    return s;
}

SInstr
shalt()
{
    SInstr s;
    s.k = SInstr::K::kHalt;
    return s;
}

/**
 * Two switches each waiting for a word from the other before
 * forwarding to their processor: a genuine routing cycle (both procs
 * recv first, so nothing is ever injected).
 */
CompiledProgram
routing_cycle()
{
    CompiledProgram cp = skeleton(2);
    cp.tiles[0].code = {pi(Op::kRecv, 1), pi(Op::kSend, -1, 1),
                        pi(Op::kHalt)};
    cp.tiles[1].code = {pi(Op::kRecv, 1), pi(Op::kSend, -1, 1),
                        pi(Op::kHalt)};
    cp.switches[0].code = {route1(Dir::kEast, Dir::kProc),
                           route1(Dir::kProc, Dir::kEast), shalt()};
    cp.switches[1].code = {route1(Dir::kWest, Dir::kProc),
                           route1(Dir::kProc, Dir::kWest), shalt()};
    return cp;
}

TEST(Deadlock, WaitForGraphNamesTheCycle)
{
    CompiledProgram cp = routing_cycle();
    Simulator sim(cp);
    try {
        sim.run();
        FAIL() << "routing cycle must deadlock";
    } catch (const DeadlockError &e) {
        std::string msg = e.what();
        // Exact detection (no timeout spin) with the cyclic switches
        // named along the blocking cycle.
        EXPECT_NE(msg.find("wait-for-graph"), std::string::npos)
            << msg;
        EXPECT_NE(msg.find("blocking cycle"), std::string::npos)
            << msg;
        EXPECT_NE(msg.find("sw0@pc0"), std::string::npos) << msg;
        EXPECT_NE(msg.find("sw1@pc0"), std::string::npos) << msg;
    }
}

TEST(Deadlock, ExactDetectionFiresFast)
{
    // The frozen-machine detector must report at the freeze, not
    // after the 100k-cycle stall-count window.
    CompiledProgram cp = routing_cycle();
    Simulator sim(cp);
    try {
        sim.run();
        FAIL() << "routing cycle must deadlock";
    } catch (const DeadlockError &e) {
        std::string msg = e.what();
        EXPECT_EQ(msg.find("no progress for"), std::string::npos)
            << "timeout backstop fired instead of exact detection: "
            << msg;
    }
}

TEST(Deadlock, TimeoutBackstopStillFiresUnderJitter)
{
    // Clock jitter redraws every cycle, which disables the exact
    // frozen-machine proof; the stall-count backstop must still
    // catch the same cycle (and say so in the old format).
    CompiledProgram cp = routing_cycle();
    FaultConfig f;
    f.jitter_rate = 0.5;
    f.seed = 3;
    Simulator sim(cp, f);
    try {
        sim.run();
        FAIL() << "routing cycle must deadlock under jitter too";
    } catch (const DeadlockError &e) {
        std::string msg = e.what();
        EXPECT_NE(msg.find("no progress for"), std::string::npos)
            << msg;
        // The wait-for-graph analysis is appended to the timeout
        // report as well.
        EXPECT_NE(msg.find("blocking cycle"), std::string::npos)
            << msg;
    }
}

TEST(Faults, MultiChannelDeterministicPerSeed)
{
    const BenchmarkProgram &prog = benchmark("jacobi");
    FaultConfig f;
    f.miss_rate = 0.05;
    f.penalty = 11;
    f.route_stall_rate = 0.05;
    f.route_stall_cycles = 2;
    f.dyn_delay_rate = 0.1;
    f.dyn_delay_cycles = 5;
    f.jitter_rate = 0.02;
    f.seed = 1234;
    RunResult a = run_rawcc(prog.source, MachineConfig::base(4),
                            prog.check_array, {}, f);
    RunResult b = run_rawcc(prog.source, MachineConfig::base(4),
                            prog.check_array, {}, f);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.prints, b.prints);
    EXPECT_EQ(a.check_words, b.check_words);
}

TEST(Faults, StaticOrderingHoldsUnderEveryChannel)
{
    // Appendix A live: each channel perturbs timing (cycles change)
    // but never results (prints and memory identical to clean).
    const BenchmarkProgram &prog = benchmark("jacobi");
    RunResult clean = run_rawcc(prog.source, MachineConfig::base(4),
                                prog.check_array);
    FaultConfig route, dyn, jitter;
    route.route_stall_rate = 0.2;
    route.route_stall_cycles = 4;
    route.seed = 7;
    dyn.dyn_delay_rate = 0.3;
    dyn.dyn_delay_cycles = 9;
    dyn.seed = 7;
    jitter.jitter_rate = 0.1;
    jitter.seed = 7;
    bool perturbed = false;
    for (const FaultConfig &f : {route, dyn, jitter}) {
        RunResult r = run_rawcc(prog.source, MachineConfig::base(4),
                                prog.check_array, {}, f);
        EXPECT_EQ(r.prints, clean.prints);
        EXPECT_EQ(r.check_words, clean.check_words);
        // Injected latency may only ever cost cycles (a channel the
        // schedule never exercises — e.g. dyn delay on an all-static
        // program — costs none).
        EXPECT_GE(r.cycles, clean.cycles);
        perturbed |= r.cycles != clean.cycles;
    }
    EXPECT_TRUE(perturbed)
        << "no fault channel perturbed the timing at all";
}

TEST(Checker, CleanOnRealScheduleAndHashTimingInvariant)
{
    const BenchmarkProgram &prog = benchmark("jacobi");
    CheckConfig checks;
    checks.provenance = true;
    checks.fifo_bounds = true;
    RunResult clean = run_rawcc(prog.source, MachineConfig::base(4),
                                prog.check_array, {}, {}, checks);
    EXPECT_EQ(clean.sim.check_failure_count, 0);
    EXPECT_NE(clean.sim.prov_hash, 0u);
    // Same program under heavy faults: still zero violations, and
    // the provenance stream hash is bit-identical (the checker's
    // live statement of the static-ordering property).
    FaultConfig f;
    f.miss_rate = 0.2;
    f.penalty = 17;
    f.route_stall_rate = 0.1;
    f.route_stall_cycles = 3;
    f.dyn_delay_rate = 0.1;
    f.dyn_delay_cycles = 6;
    f.jitter_rate = 0.05;
    f.seed = 99;
    RunResult faulty = run_rawcc(prog.source, MachineConfig::base(4),
                                 prog.check_array, {}, f, checks);
    EXPECT_EQ(faulty.sim.check_failure_count, 0);
    EXPECT_EQ(faulty.sim.prov_hash, clean.sim.prov_hash);
}

TEST(Checker, FlagsProducerChangeAtOneConsumptionPoint)
{
    // Tile 0 sends from two different pcs; tile 1 consumes both at
    // the SAME recv pc (a loop).  A real static schedule never does
    // this — the checker must flag the binding change, record a
    // structured failure, and let the run finish.
    CompiledProgram cp = skeleton(2);
    PInstr two = pi(Op::kConst, 2);
    two.imm = int_bits(2);
    PInstr one = pi(Op::kConst, 3);
    one.imm = int_bits(1);
    PInstr v = pi(Op::kConst, 1);
    v.imm = int_bits(42);
    cp.tiles[0].code = {v, pi(Op::kSend, -1, 1),
                        pi(Op::kSend, -1, 1), pi(Op::kHalt)};
    PInstr br = pi(Op::kBranch, -1, 2);
    br.target = 2;
    cp.tiles[1].code = {two, one,
                        pi(Op::kRecv, 4),      // pc2: the loop body
                        pi(Op::kSub, 2, 2, 3), // counter--
                        br, pi(Op::kHalt)};
    cp.switches[0].code = {route1(Dir::kProc, Dir::kEast),
                           route1(Dir::kProc, Dir::kEast), shalt()};
    cp.switches[1].code = {route1(Dir::kWest, Dir::kProc),
                           route1(Dir::kWest, Dir::kProc), shalt()};
    CheckConfig checks;
    checks.provenance = true;
    checks.fifo_bounds = true;
    Simulator sim(cp, {}, checks);
    SimResult r = sim.run();
    ASSERT_GE(r.check_failure_count, 1);
    ASSERT_FALSE(r.check_failures.empty());
    EXPECT_EQ(r.check_failures[0].kind, "provenance");
    EXPECT_EQ(r.check_failures[0].tile, 1);
    EXPECT_NE(r.check_failures[0].detail.find(
                  "static-ordering violation"),
              std::string::npos);
}

TEST(Checker, ZeroCostPathsUntouchedWhenDisabled)
{
    // With checking off the SimResult check fields stay at their
    // defaults (the simulator takes none of the checker paths).
    const BenchmarkProgram &prog = benchmark("jacobi");
    RunResult r = run_rawcc(prog.source, MachineConfig::base(4),
                            prog.check_array);
    EXPECT_EQ(r.sim.check_failure_count, 0);
    EXPECT_EQ(r.sim.prov_hash, 0u);
    EXPECT_TRUE(r.sim.check_failures.empty());
}

TEST(Campaign, PointGeneratorCoversChannelsAndSeeds)
{
    FaultConfig clean = campaign_point(5, 0);
    EXPECT_FALSE(clean.any());
    bool miss = false, route = false, dyn = false, jitter = false;
    for (int i = 1; i <= 16; i++) {
        FaultConfig f = campaign_point(5, i);
        EXPECT_TRUE(f.any()) << "point " << i;
        EXPECT_NE(f.seed, campaign_point(5, i - 1).seed);
        miss |= f.miss_rate > 0;
        route |= f.route_stall_rate > 0;
        dyn |= f.dyn_delay_rate > 0;
        jitter |= f.jitter_rate > 0;
    }
    EXPECT_TRUE(miss && route && dyn && jitter);
}

TEST(Campaign, SmallSweepCleanAndReportWellFormed)
{
    CampaignReport rep = run_fault_campaign(
        "jacobi", MachineConfig::base(4), 6, 11, 2);
    EXPECT_TRUE(rep.clean()) << rep.summary();
    EXPECT_EQ(rep.failed_points(), 0);
    ASSERT_EQ(rep.points.size(), 6u);
    EXPECT_EQ(rep.points[0].channels, "clean");
    for (const CampaignPoint &p : rep.points) {
        EXPECT_TRUE(p.ok());
        EXPECT_EQ(p.prov_hash, rep.points[0].prov_hash);
    }
    std::string js = rep.to_json();
    EXPECT_NE(js.find("\"clean\": true"), std::string::npos);
    EXPECT_NE(js.find("\"points\": 6"), std::string::npos);
}

#ifdef RAWCC_BIN
int
run_cli(const std::string &args)
{
    std::string cmd = std::string(RAWCC_BIN) + " " + args +
                      " >/dev/null 2>&1";
    int rc = std::system(cmd.c_str());
    return WIFEXITED(rc) ? WEXITSTATUS(rc) : -1;
}

TEST(Cli, RejectsNaNAndOutOfRangeRates)
{
    EXPECT_EQ(run_cli("--miss-rate nan jacobi"), 2);
    EXPECT_EQ(run_cli("--miss-rate 1.5 jacobi"), 2);
    EXPECT_EQ(run_cli("--miss-rate -0.1 jacobi"), 2);
    EXPECT_EQ(run_cli("--miss-penalty -3 jacobi"), 2);
    EXPECT_EQ(run_cli("--route-stall-rate nan jacobi"), 2);
    EXPECT_EQ(run_cli("--dyn-delay-rate 2 jacobi"), 2);
    EXPECT_EQ(run_cli("--jitter-rate nan jacobi"), 2);
}

TEST(Cli, RejectsBadModuloKnobs)
{
    EXPECT_EQ(run_cli("--mii-cap 0 jacobi"), 2);
    EXPECT_EQ(run_cli("--mii-cap -5 jacobi"), 2);
    EXPECT_EQ(run_cli("--mii-cap 65537 jacobi"), 2);
    EXPECT_EQ(run_cli("--mii-cap nope jacobi"), 2);
    EXPECT_EQ(run_cli("--oracle-budget -1 jacobi"), 2);
    EXPECT_EQ(run_cli("--oracle-budget 100000001 jacobi"), 2);
    EXPECT_EQ(run_cli("--oracle-budget x jacobi"), 2);
    // Missing value at end of line.
    EXPECT_EQ(run_cli("jacobi --mii-cap"), 2);
    EXPECT_EQ(run_cli("jacobi --oracle-budget"), 2);
}

TEST(Cli, ModuloKnobsRoundTrip)
{
    // In-range values parse and compile cleanly.
    EXPECT_EQ(run_cli("--modulo --mii-cap 64 --oracle-budget 1000 "
                      "--tiles 4 --no-run jacobi"),
              0);
    EXPECT_EQ(run_cli("--mii-cap 1 --oracle-budget 0 "
                      "--tiles 4 --no-run jacobi"),
              0);
}
#endif

} // namespace
} // namespace raw
