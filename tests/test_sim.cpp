/**
 * @file
 * Simulator tests: port FIFO semantics, memory interleaving,
 * hand-assembled processor/switch programs, blocking semantics,
 * dynamic network, deadlock detection, fault injection determinism.
 */

#include <gtest/gtest.h>

#include "sim/disasm.hpp"
#include "sim/simulator.hpp"

namespace raw {
namespace {

TEST(Fifo, VisibilityIsOneCycleDelayed)
{
    Fifo f(2);
    EXPECT_FALSE(f.can_pop(0));
    EXPECT_TRUE(f.can_push(0));
    f.push(0, 7);
    // Same cycle: the pushed word is not yet visible.
    EXPECT_FALSE(f.can_pop(0));
    EXPECT_TRUE(f.can_pop(1));
    EXPECT_EQ(f.pop(1), 7u);
}

TEST(Fifo, SteadyStateOneWordPerCycle)
{
    Fifo f(2);
    int delivered = 0;
    uint32_t next_push = 0, expect_pop = 0;
    for (int64_t cycle = 0; cycle < 20; cycle++) {
        if (f.can_pop(cycle)) {
            EXPECT_EQ(f.pop(cycle), expect_pop++);
            delivered++;
        }
        if (f.can_push(cycle))
            f.push(cycle, next_push++);
    }
    EXPECT_GE(delivered, 18) << "sustains ~1 word/cycle";
}

TEST(Fifo, CapacityBounds)
{
    Fifo f(2);
    f.push(0, 1);
    f.push(0, 2);
    EXPECT_FALSE(f.can_push(0));
    EXPECT_FALSE(f.can_push(1)) << "still full";
    EXPECT_EQ(f.pop(1), 1u);
    // Space freed by a pop becomes visible at the next cycle edge
    // (registered ports), not within the same cycle.
    EXPECT_FALSE(f.can_push(1));
    EXPECT_TRUE(f.can_push(2));
}

TEST(Fifo, RingWrapsAtFullCapacity)
{
    // Fill, drain, and refill across the ring seam at max capacity.
    Fifo f(4);
    int64_t cycle = 0;
    for (uint32_t round = 0; round < 3; round++) {
        for (uint32_t i = 0; i < 4; i++)
            f.push(cycle, round * 10 + i);
        cycle++;
        for (uint32_t i = 0; i < 4; i++)
            EXPECT_EQ(f.pop(cycle), round * 10 + i);
        cycle++;
    }
    EXPECT_TRUE(f.empty());
}

TEST(Fifo, CycleJumpsActLikeElapsedCycles)
{
    // The quiescence fast-forward advances `now` by many cycles at
    // once; the FIFO must treat a jump exactly like that many idle
    // cycles (counters reset, contents intact).
    Fifo f(2);
    f.push(3, 9);
    EXPECT_FALSE(f.can_pop(3));
    EXPECT_TRUE(f.can_pop(1000));
    EXPECT_EQ(f.pop(1000), 9u);
    f.push(1000, 10);
    EXPECT_FALSE(f.can_pop(1000));
    EXPECT_EQ(f.pop(2000), 10u);
}

TEST(Memory, LowOrderInterleaving)
{
    MemorySystem mem(4, 64, {0, 0, 0, 0});
    EXPECT_EQ(mem.home_of(0), 0);
    EXPECT_EQ(mem.home_of(5), 1);
    EXPECT_EQ(mem.home_of(7), 3);
    EXPECT_EQ(mem.local_of(9), 2);
    mem.write_global(13, 0xABCD);
    EXPECT_EQ(mem.read_global(13), 0xABCDu);
    EXPECT_EQ(mem.read_local(1, 3), 0xABCDu);
}

TEST(Memory, SpillRegionIsPrivate)
{
    MemorySystem mem(2, 8, {4, 4});
    mem.write_spill(0, 2, 111);
    mem.write_spill(1, 2, 222);
    EXPECT_EQ(mem.read_spill(0, 2), 111u);
    EXPECT_EQ(mem.read_spill(1, 2), 222u);
    EXPECT_THROW(mem.read_spill(0, 9), PanicError);
}

// ---------------------------------------------------------------
// Hand-assembled machine programs.

PInstr
pi(Op op, int dst = -1, int a = -1, int b = -1)
{
    PInstr p;
    p.op = op;
    p.dst = dst;
    p.src[0] = a;
    p.src[1] = b;
    return p;
}

CompiledProgram
skeleton(int n)
{
    CompiledProgram cp;
    cp.machine = MachineConfig::base(n);
    cp.tiles.resize(n);
    cp.switches.resize(n);
    cp.total_words = 16;
    return cp;
}

TEST(Processor, ArithmeticAndPrint)
{
    CompiledProgram cp = skeleton(1);
    PInstr c = pi(Op::kConst, 1);
    c.imm = int_bits(6);
    cp.tiles[0].code = {c, pi(Op::kMul, 2, 1, 1), pi(Op::kPrint, -1, 2),
                        pi(Op::kHalt)};
    cp.tiles[0].code[2].print_seq = 0;
    Simulator sim(cp);
    SimResult r = sim.run();
    ASSERT_EQ(r.prints.size(), 1u);
    EXPECT_EQ(bits_int(r.prints[0].bits), 36);
    // const(1) + mul issues at 1, result at 13, print at 13, halt.
    EXPECT_GE(r.cycles, 14);
}

TEST(Processor, ScoreboardStallsOnLatency)
{
    // Dependent MULs cost 12 cycles each; independent ones pipeline.
    CompiledProgram dep = skeleton(1);
    PInstr c = pi(Op::kConst, 1);
    c.imm = int_bits(3);
    dep.tiles[0].code = {c, pi(Op::kMul, 2, 1, 1),
                         pi(Op::kMul, 3, 2, 2), pi(Op::kHalt)};
    CompiledProgram indep = skeleton(1);
    indep.tiles[0].code = {c, pi(Op::kMul, 2, 1, 1),
                           pi(Op::kMul, 3, 1, 1), pi(Op::kHalt)};
    Simulator s1(dep), s2(indep);
    int64_t c1 = s1.run().cycles;
    int64_t c2 = s2.run().cycles;
    EXPECT_GT(c1, c2 + 8) << "dependent chain must stall";
}

TEST(Processor, StoreAndLoadRoundTrip)
{
    CompiledProgram cp = skeleton(1);
    cp.arrays.push_back({"A", Type::kI32, 0, 8});
    cp.total_words = 8;
    PInstr addr = pi(Op::kConst, 1);
    addr.imm = int_bits(5);
    PInstr val = pi(Op::kConst, 2);
    val.imm = int_bits(99);
    PInstr st = pi(Op::kStore, -1, 1, 2);
    st.array = 0;
    PInstr ld = pi(Op::kLoad, 3, 1);
    ld.array = 0;
    PInstr pr = pi(Op::kPrint, -1, 3);
    pr.print_seq = 0;
    cp.tiles[0].code = {addr, val, st, ld, pr, pi(Op::kHalt)};
    Simulator sim(cp);
    SimResult r = sim.run();
    EXPECT_EQ(bits_int(r.prints[0].bits), 99);
    EXPECT_EQ(sim.read_array("A")[5], int_bits(99));
}

TEST(Switch, RouteMovesWordBetweenTiles)
{
    CompiledProgram cp = skeleton(2);
    PInstr c = pi(Op::kConst, 1);
    c.imm = int_bits(42);
    cp.tiles[0].code = {c, pi(Op::kSend, -1, 1), pi(Op::kHalt)};
    PInstr pr = pi(Op::kPrint, -1, 2);
    pr.print_seq = 0;
    cp.tiles[1].code = {pi(Op::kRecv, 2), pr, pi(Op::kHalt)};
    SInstr r0;
    r0.k = SInstr::K::kRoute;
    r0.routes = {{Dir::kProc,
                  static_cast<uint8_t>(1u << static_cast<int>(
                                           Dir::kEast)),
                  -1}};
    SInstr r1;
    r1.k = SInstr::K::kRoute;
    r1.routes = {{Dir::kWest,
                  static_cast<uint8_t>(1u << static_cast<int>(
                                           Dir::kProc)),
                  -1}};
    SInstr h;
    h.k = SInstr::K::kHalt;
    cp.switches[0].code = {r0, h};
    cp.switches[1].code = {r1, h};
    Simulator sim(cp);
    SimResult r = sim.run();
    EXPECT_EQ(bits_int(r.prints[0].bits), 42);
}

TEST(Switch, BlockingRouteWaitsForWord)
{
    // The switch's route comes long before the processor sends; the
    // route must simply wait (near-neighbor flow control).
    CompiledProgram cp = skeleton(2);
    PInstr c = pi(Op::kConst, 1);
    c.imm = int_bits(5);
    PInstr slow = pi(Op::kDiv, 2, 1, 1); // 35 cycles
    cp.tiles[0].code = {c, slow, pi(Op::kSend, -1, 2), pi(Op::kHalt)};
    PInstr pr = pi(Op::kPrint, -1, 2);
    pr.print_seq = 0;
    cp.tiles[1].code = {pi(Op::kRecv, 2), pr, pi(Op::kHalt)};
    SInstr r0;
    r0.k = SInstr::K::kRoute;
    r0.routes = {{Dir::kProc,
                  static_cast<uint8_t>(1u << static_cast<int>(
                                           Dir::kEast)),
                  -1}};
    SInstr r1;
    r1.k = SInstr::K::kRoute;
    r1.routes = {{Dir::kWest,
                  static_cast<uint8_t>(1u << static_cast<int>(
                                           Dir::kProc)),
                  -1}};
    SInstr h;
    h.k = SInstr::K::kHalt;
    cp.switches[0].code = {r0, h};
    cp.switches[1].code = {r1, h};
    Simulator sim(cp);
    SimResult r = sim.run();
    EXPECT_EQ(bits_int(r.prints[0].bits), 1);
    EXPECT_GT(r.cycles, 35);
}

TEST(Switch, AluAndBranch)
{
    // Switch counts 0,1,2 in a register and loops over a route
    // three times.
    CompiledProgram cp = skeleton(2);
    PInstr c = pi(Op::kConst, 1);
    c.imm = int_bits(1);
    cp.tiles[0].code = {c,
                        pi(Op::kSend, -1, 1),
                        pi(Op::kSend, -1, 1),
                        pi(Op::kSend, -1, 1),
                        pi(Op::kHalt)};
    PInstr pr = pi(Op::kPrint, -1, 3);
    pr.print_seq = 0;
    cp.tiles[1].code = {pi(Op::kRecv, 2), pi(Op::kRecv, 2),
                        pi(Op::kRecv, 3), pr, pi(Op::kHalt)};
    // Switch 0: $1 = 3; L: route P->E; $1 = $1 - 1... using kAlu.
    SInstr init;
    init.k = SInstr::K::kAlu;
    init.op = Op::kConst;
    init.dst = 1;
    init.imm = int_bits(3);
    SInstr dec;
    dec.k = SInstr::K::kAlu;
    dec.op = Op::kConst;
    dec.dst = 2;
    dec.imm = int_bits(1);
    SInstr route;
    route.k = SInstr::K::kRoute;
    route.routes = {{Dir::kProc,
                     static_cast<uint8_t>(1u << static_cast<int>(
                                              Dir::kEast)),
                     -1}};
    SInstr sub;
    sub.k = SInstr::K::kAlu;
    sub.op = Op::kSub;
    sub.dst = 1;
    sub.a = 1;
    sub.b = 2;
    SInstr bnz;
    bnz.k = SInstr::K::kBnez;
    bnz.cond = 1;
    bnz.target = 2;
    SInstr h;
    h.k = SInstr::K::kHalt;
    cp.switches[0].code = {init, dec, route, sub, bnz, h};
    SInstr r1;
    r1.k = SInstr::K::kRoute;
    r1.routes = {{Dir::kWest,
                  static_cast<uint8_t>(1u << static_cast<int>(
                                           Dir::kProc)),
                  -1}};
    cp.switches[1].code = {r1, r1, r1, h};
    Simulator sim(cp);
    SimResult r = sim.run();
    EXPECT_EQ(bits_int(r.prints[0].bits), 1);
}

TEST(Simulator, DeadlockDetected)
{
    // Two processors that both receive before sending: classic cycle.
    CompiledProgram cp = skeleton(2);
    cp.tiles[0].code = {pi(Op::kRecv, 1), pi(Op::kSend, -1, 1),
                        pi(Op::kHalt)};
    cp.tiles[1].code = {pi(Op::kRecv, 1), pi(Op::kSend, -1, 1),
                        pi(Op::kHalt)};
    SInstr r0;
    r0.k = SInstr::K::kRoute;
    r0.routes = {{Dir::kProc,
                  static_cast<uint8_t>(1u << static_cast<int>(
                                           Dir::kEast)),
                  -1}};
    SInstr r0b;
    r0b.k = SInstr::K::kRoute;
    r0b.routes = {{Dir::kEast,
                   static_cast<uint8_t>(1u << static_cast<int>(
                                            Dir::kProc)),
                   -1}};
    SInstr h;
    h.k = SInstr::K::kHalt;
    cp.switches[0].code = {r0b, r0, h};
    SInstr r1;
    r1.k = SInstr::K::kRoute;
    r1.routes = {{Dir::kProc,
                  static_cast<uint8_t>(1u << static_cast<int>(
                                           Dir::kWest)),
                  -1}};
    SInstr r1b;
    r1b.k = SInstr::K::kRoute;
    r1b.routes = {{Dir::kWest,
                   static_cast<uint8_t>(1u << static_cast<int>(
                                            Dir::kProc)),
                   -1}};
    cp.switches[1].code = {r1b, r1, h};
    Simulator sim(cp);
    EXPECT_THROW(sim.run(), DeadlockError);
}

TEST(Simulator, DynamicNetworkRoundTrip)
{
    // A load whose home is the other tile goes over the dynamic
    // network: request, handler service, reply.
    CompiledProgram cp = skeleton(2);
    cp.arrays.push_back({"A", Type::kI32, 0, 8});
    cp.total_words = 8;
    // Tile 1 owns odd addresses; tile 0 reads A[3].
    PInstr addr = pi(Op::kConst, 1);
    addr.imm = int_bits(3);
    PInstr val = pi(Op::kConst, 2);
    val.imm = int_bits(77);
    PInstr st = pi(Op::kDynStore, -1, 1, 2);
    st.array = 0;
    PInstr ld = pi(Op::kDynLoad, 3, 1);
    ld.array = 0;
    PInstr pr = pi(Op::kPrint, -1, 3);
    pr.print_seq = 0;
    cp.tiles[0].code = {addr, val, st, ld, pr, pi(Op::kHalt)};
    cp.tiles[1].code = {pi(Op::kHalt)};
    Simulator sim(cp);
    SimResult r = sim.run();
    EXPECT_EQ(bits_int(r.prints[0].bits), 77);
    EXPECT_EQ(r.dyn_messages, 2);
    EXPECT_EQ(sim.memory().read_global(3), int_bits(77));
}

TEST(Simulator, FaultInjectionDeterministicPerSeed)
{
    CompiledProgram cp = skeleton(1);
    cp.arrays.push_back({"A", Type::kI32, 0, 8});
    cp.total_words = 8;
    std::vector<PInstr> code;
    PInstr addr = pi(Op::kConst, 1);
    addr.imm = int_bits(2);
    code.push_back(addr);
    for (int i = 0; i < 20; i++) {
        PInstr ld = pi(Op::kLoad, 2, 1);
        ld.array = 0;
        code.push_back(ld);
        code.push_back(pi(Op::kAdd, 3, 2, 2));
    }
    code.push_back(pi(Op::kHalt));
    cp.tiles[0].code = code;

    FaultConfig f;
    f.miss_rate = 0.5;
    f.penalty = 13;
    f.seed = 99;
    Simulator s1(cp, f), s2(cp, f);
    EXPECT_EQ(s1.run().cycles, s2.run().cycles);
    FaultConfig f2 = f;
    f2.seed = 100;
    Simulator s3(cp, f2);
    Simulator s4(cp, FaultConfig{});
    int64_t faulty = s3.run().cycles;
    int64_t clean = s4.run().cycles;
    EXPECT_GT(faulty, clean);
}

TEST(Disasm, RendersEveryKind)
{
    CompiledProgram cp = skeleton(2);
    cp.arrays.push_back({"A", Type::kI32, 0, 8});
    PInstr c = pi(Op::kConst, 1);
    c.imm = int_bits(7);
    PInstr ld = pi(Op::kLoad, 2, 1);
    ld.array = 0;
    PInstr sp = pi(Op::kLoad, 3, -1);
    sp.array = kSpillArray;
    sp.imm = 4;
    cp.tiles[0].code = {c, ld, sp, pi(Op::kSend, -1, 2),
                        pi(Op::kHalt)};
    SInstr route;
    route.k = SInstr::K::kRoute;
    route.routes = {{Dir::kProc,
                     static_cast<uint8_t>(1u << static_cast<int>(
                                              Dir::kEast)),
                     0}};
    cp.switches[0].code = {route};
    std::string text = disasm_program(cp);
    EXPECT_NE(text.find("load A[r1]"), std::string::npos);
    EXPECT_NE(text.find("spill[4]"), std::string::npos);
    EXPECT_NE(text.find("send r2"), std::string::npos);
    EXPECT_NE(text.find("route P->E$0"), std::string::npos);
}

} // namespace
} // namespace raw
