/**
 * @file
 * Schedule-quality optimizer tests (SchedOptions::sched_iters,
 * SchedOptions::route_select, CompilerOptions::pgo):
 *
 *  - best-of-N rescheduling never produces a longer block schedule
 *    than the single greedy pass, on randomized task graphs over
 *    2/4/16-tile meshes;
 *  - YX-ordered route trees satisfy the same prefix-consistency
 *    invariants as XY trees (build_route_tree's internal checks) and
 *    agree on depths, so swapping the dimension order never changes
 *    a path's latency, only its transit switches;
 *  - optimized schedules stay structurally valid (slot exclusivity,
 *    end-to-end contiguous paths under whichever tree was chosen);
 *  - the scheduler's estimated block length tracks the simulator's
 *    achieved fault-free length on straight-line programs;
 *  - fifo_priority mode orders node and path tasks by one global
 *    ready sequence (imports complete eagerly), pinned by value;
 *  - --pgo (measured best-of portfolio) never loses cycles and never
 *    changes program semantics.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <set>
#include <string>

#include "analysis/liveness.hpp"
#include "analysis/replication.hpp"
#include "analysis/taskgraph.hpp"
#include "frontend/lower.hpp"
#include "frontend/parser.hpp"
#include "harness/harness.hpp"
#include "schedule/event_scheduler.hpp"
#include "sim/profile.hpp"
#include "transform/congruence.hpp"
#include "transform/constfold.hpp"
#include "transform/rename.hpp"

namespace raw {
namespace {

// Same harness as test_schedule.cpp: lower, fold, rename, analyze,
// round-robin homes, build the task graph for one block, partition,
// derive paths, schedule with the given options.
struct Ctx
{
    Function fn;
    std::unique_ptr<ReplicationAnalysis> repl;
    std::unique_ptr<VarLiveness> live;
    HomeMap homes;
    std::unique_ptr<TaskGraph> graph;
    Partition part;
    std::vector<CommPath> paths;
    BlockSchedule sched;
    MachineConfig machine;
};

Ctx
schedule(const std::string &src, int n_tiles, const SchedOptions &so)
{
    Ctx c;
    c.fn = lower_program(parse_program(src));
    constfold_function(c.fn);
    rename_function(c.fn);
    c.repl = std::make_unique<ReplicationAnalysis>(c.fn, 8, 12, true);
    c.live = std::make_unique<VarLiveness>(c.fn);
    c.homes.n_tiles = n_tiles;
    c.homes.var_home.assign(c.fn.values.size(), 0);
    int next = 0;
    for (ValueId v : c.fn.var_ids())
        if (!c.repl->var_replicated(v)) {
            c.homes.var_home[v] = next;
            next = (next + 1) % n_tiles;
        }
    int64_t off = 0;
    for (const ArrayInfo &a : c.fn.arrays) {
        c.homes.array_base.push_back(off);
        off += a.size();
    }
    c.machine = MachineConfig::base(n_tiles);
    CongruenceMap cong(c.fn, 0);
    c.graph = std::make_unique<TaskGraph>(c.fn, 0, c.machine, cong,
                                          *c.repl, *c.live, c.homes);
    c.part = partition_taskgraph(*c.graph, c.machine,
                                 PartitionOptions{});
    c.paths = build_comm_paths(*c.graph, c.part, c.machine, -1, {});
    c.sched =
        schedule_block(*c.graph, c.part, c.machine, c.paths, so);
    return c;
}

const char *kSpread = R"(
float A[8];
float B[8];
A[0] = 1.0; A[1] = 2.0; A[2] = 3.0; A[3] = 4.0;
A[4] = 5.0; A[5] = 6.0; A[6] = 7.0; A[7] = 8.0;
B[0] = A[0] * A[1] + A[2];
B[1] = A[3] * A[4] + A[5];
B[2] = A[6] * A[7] + A[0];
B[3] = A[1] + A[4] + A[7];
)";

/**
 * Deterministic pseudo-random straight-line program: @p k statements
 * mixing wide independent expressions with occasional chains through
 * earlier results, so the task graph has both breadth (many ready
 * tasks competing for slots) and depth (critical paths crossing
 * tiles).  Pure LCG so every run sees the same graphs.
 */
std::string
random_program(uint32_t seed, int k)
{
    uint32_t s = seed * 2654435761u + 1u;
    auto rnd = [&s](int m) {
        s = s * 1664525u + 1013904223u;
        return static_cast<int>((s >> 16) % m);
    };
    std::string src = "float A[16];\nfloat B[32];\n";
    for (int i = 0; i < 16; i++)
        src += "A[" + std::to_string(i) + "] = " +
               std::to_string(i + 1) + ".0;\n";
    for (int i = 0; i < k; i++) {
        std::string lhs = "B[" + std::to_string(i % 32) + "]";
        auto operand = [&]() -> std::string {
            if (i > 0 && rnd(4) == 0) // chain through an earlier B
                return "B[" + std::to_string(rnd(std::min(i, 32))) +
                       "]";
            return "A[" + std::to_string(rnd(16)) + "]";
        };
        const char *op1 = rnd(2) ? " * " : " + ";
        const char *op2 = rnd(2) ? " + " : " - ";
        src += lhs + " = " + operand() + op1 + operand() + op2 +
               operand() + ";\n";
    }
    return src;
}

// ---------------------------------------------------------------
// (a) Best-of-N never longer than the single greedy pass.

TEST(BestOfN, NeverLongerThanSinglePass)
{
    std::vector<std::string> programs = {kSpread};
    for (uint32_t seed : {1u, 2u, 3u, 4u})
        programs.push_back(random_program(seed, 24));
    for (const std::string &src : programs) {
        for (int n : {2, 4, 16}) {
            int64_t base =
                schedule(src, n, SchedOptions{}).sched.makespan;
            SchedOptions iters;
            iters.sched_iters = 3;
            SchedOptions route;
            route.route_select = true;
            SchedOptions both;
            both.sched_iters = 3;
            both.route_select = true;
            EXPECT_LE(schedule(src, n, iters).sched.makespan, base)
                << "sched_iters regressed, n=" << n;
            EXPECT_LE(schedule(src, n, route).sched.makespan, base)
                << "route_select regressed, n=" << n;
            EXPECT_LE(schedule(src, n, both).sched.makespan, base)
                << "combined flags regressed, n=" << n;
        }
    }
}

// ---------------------------------------------------------------
// (b) YX route trees: same invariants and depths as XY.

TEST(RouteTreeYX, DimensionOrderYThenX)
{
    MachineConfig m = MachineConfig::base(16); // 4x4
    CommPath p;
    p.src_tile = 0;
    p.dests = {{10, true, false}}; // row 2, col 2
    RouteTree t = build_route_tree(m, p, RouteOrder::kYX);
    // Path: 0 ->S 4 ->S 8 ->E 9 ->E 10 (rows first, then columns).
    std::map<int, Dir> in_of;
    for (const TreeHop &h : t.hops)
        in_of[h.tile] = h.in;
    ASSERT_TRUE(in_of.count(4));
    ASSERT_TRUE(in_of.count(8));
    ASSERT_TRUE(in_of.count(9));
    ASSERT_TRUE(in_of.count(10));
    EXPECT_EQ(in_of[4], Dir::kNorth);
    EXPECT_EQ(in_of[8], Dir::kNorth);
    EXPECT_EQ(in_of[9], Dir::kWest);
    EXPECT_EQ(in_of[10], Dir::kWest);
    EXPECT_EQ(t.max_depth, 4);
}

TEST(RouteTreeYX, SameDepthsAsXYOnDerivedPaths)
{
    // Every path a real block derives must build a YX tree that
    // passes build_route_tree's internal prefix-consistency checks
    // (they panic on violation) and deliver to the same destinations
    // at the same depths as the XY tree — the Manhattan distance
    // does not depend on the dimension order.
    for (uint32_t seed : {1u, 2u, 3u}) {
        Ctx c = schedule(random_program(seed, 24), 16,
                         SchedOptions{});
        for (const CommPath &p : c.paths) {
            RouteTree xy = build_route_tree(c.machine, p);
            RouteTree yx =
                build_route_tree(c.machine, p, RouteOrder::kYX);
            EXPECT_EQ(xy.max_depth, yx.max_depth);
            auto xr = xy.proc_recvs, yr = yx.proc_recvs;
            std::sort(xr.begin(), xr.end());
            std::sort(yr.begin(), yr.end());
            EXPECT_EQ(xr, yr) << "delivery set/depth differs";
            EXPECT_EQ(xy.hops.size(), yx.hops.size())
                << "single-dest trees reserve equal slot counts";
        }
    }
}

// ---------------------------------------------------------------
// Optimized schedules keep the structural guarantees of the seed
// scheduler: exclusive slots, contiguous end-to-end paths (under
// whichever route tree the pass committed).

TEST(BestOfN, OptimizedScheduleStructurallyValid)
{
    SchedOptions so;
    so.sched_iters = 3;
    so.route_select = true;
    for (uint32_t seed : {1u, 2u}) {
        Ctx c = schedule(random_program(seed, 24), 16, so);
        for (int t = 0; t < 16; t++) {
            std::set<int64_t> used;
            for (const TileItem &it : c.sched.tiles[t])
                EXPECT_TRUE(used.insert(it.cycle).second)
                    << "double-booked processor slot, tile " << t;
            std::map<int64_t, uint8_t> in_used, out_used;
            for (const SwitchItem &it : c.sched.switches[t]) {
                uint8_t in_bit = static_cast<uint8_t>(
                    1u << static_cast<int>(it.in));
                EXPECT_EQ(in_used[it.cycle] & in_bit, 0)
                    << "input port reused, tile " << t;
                EXPECT_EQ(out_used[it.cycle] & it.out_mask, 0)
                    << "output port collision, tile " << t;
                in_used[it.cycle] |= in_bit;
                out_used[it.cycle] |= it.out_mask;
            }
        }
        // Each send must be contiguous under the XY or the YX tree.
        auto matches = [&](const TileItem &send,
                           const RouteTree &tree) {
            for (const TreeHop &h : tree.hops) {
                bool found = false;
                for (const SwitchItem &sw : c.sched.switches[h.tile])
                    if (sw.path == send.path &&
                        sw.cycle == send.cycle + 1 + h.depth)
                        found = true;
                if (!found)
                    return false;
            }
            for (auto &[tile, depth] : tree.proc_recvs) {
                bool found = false;
                for (const TileItem &rv : c.sched.tiles[tile])
                    if (rv.kind == TileItem::Kind::kRecv &&
                        rv.path == send.path &&
                        rv.cycle == send.cycle + 2 + depth)
                        found = true;
                if (!found)
                    return false;
            }
            return true;
        };
        for (int t = 0; t < 16; t++)
            for (const TileItem &it : c.sched.tiles[t]) {
                if (it.kind != TileItem::Kind::kSend)
                    continue;
                const CommPath &p = c.paths[it.path];
                bool ok =
                    matches(it, build_route_tree(c.machine, p)) ||
                    matches(it, build_route_tree(c.machine, p,
                                                 RouteOrder::kYX));
                EXPECT_TRUE(ok)
                    << "path neither XY- nor YX-contiguous";
            }
    }
}

// ---------------------------------------------------------------
// (c) Estimated vs achieved block length, fault-free.

TEST(EstVsAchieved, StraightLineBlocksTrackSimulator)
{
    // Calibration (see docs/scheduling.md): on straight-line
    // single-block programs the scheduler's estimate is a near-exact
    // lower bound of the fault-free run — the simulator only adds
    // startup/halt overhead and memory-port serialization the block
    // scheduler does not model, and port folding can shave at most a
    // cycle or two below the estimate.
    std::vector<std::string> programs = {kSpread};
    for (uint32_t seed : {1u, 2u, 3u})
        programs.push_back(random_program(seed, 24));
    for (const std::string &src : programs) {
        for (int n : {2, 4, 16}) {
            CompileOutput out = compile_source(
                src, MachineConfig::base(n), CompilerOptions{});
            ASSERT_EQ(out.stats.block_makespan.size(), 1u)
                << "straight-line program must be a single block";
            Simulator sim(out.program);
            int64_t meas = sim.run().cycles;
            int64_t est = out.stats.estimated_makespan();
            EXPECT_LE(est, meas + 8)
                << "estimate far above achieved length, n=" << n;
            EXPECT_LE(meas, 2 * est + 64)
                << "achieved length far above estimate, n=" << n;
        }
    }
}

// ---------------------------------------------------------------
// fifo_priority global ready sequence.

TEST(FifoPriority, SingleGlobalSequencePin)
{
    // In fifo mode the ready queue is one global sequence: an import
    // completes the moment it is pushed, so its communication paths
    // enter the queue at the import's ready position instead of after
    // a queue round-trip behind every already-ready node.  The exact
    // makespan below pins that ordering for kSpread on 4 tiles;
    // reverting to deferred import completion reorders the FIFO and
    // changes it.
    SchedOptions so;
    so.fifo_priority = true;
    Ctx c = schedule(kSpread, 4, so);
    EXPECT_EQ(c.sched.makespan, 40);
    // Fifo schedules stay structurally exclusive.
    for (int t = 0; t < 4; t++) {
        std::set<int64_t> used;
        for (const TileItem &it : c.sched.tiles[t])
            EXPECT_TRUE(used.insert(it.cycle).second);
    }
}

TEST(FifoPriority, EagerImportsNeverDeadlockRandomGraphs)
{
    SchedOptions so;
    so.fifo_priority = true;
    for (uint32_t seed : {1u, 2u, 3u, 4u})
        for (int n : {2, 4, 16}) {
            Ctx c = schedule(random_program(seed, 24), n, so);
            EXPECT_GT(c.sched.makespan, 0);
            int computes = 0;
            for (int t = 0; t < n; t++)
                for (const TileItem &it : c.sched.tiles[t])
                    if (it.kind == TileItem::Kind::kCompute)
                        computes++;
            int instr_nodes = 0;
            for (const TGNode &nd : c.graph->nodes())
                if (nd.kind == TGKind::kInstr)
                    instr_nodes++;
            EXPECT_EQ(computes, instr_nodes);
        }
}

// ---------------------------------------------------------------
// --pgo measured portfolio: never worse, semantics preserved.

TEST(Pgo, NeverWorseAndSemanticsPreserved)
{
    const BenchmarkProgram &prog = benchmark("fpppp-kernel");
    MachineConfig m = MachineConfig::base(4);
    RunResult plain =
        run_rawcc(prog.source, m, prog.check_array);
    CompilerOptions opts;
    opts.pgo = true;
    RunResult tuned =
        run_rawcc_pgo(prog.source, m, prog.check_array, opts);
    EXPECT_LE(tuned.cycles, plain.cycles)
        << "pgo portfolio must keep the plain compile as candidate 0";
    EXPECT_EQ(tuned.check_words, plain.check_words);
    EXPECT_EQ(tuned.prints, plain.prints);
}

} // namespace
} // namespace raw
