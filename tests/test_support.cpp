/**
 * @file
 * Unit tests for support utilities: gcd/lcm, floor_mod, and the
 * modular-congruence algebra underpinning affine staticization.
 */

#include <gtest/gtest.h>

#include "support/error.hpp"
#include "support/mathutil.hpp"

namespace raw {
namespace {

TEST(MathUtil, Gcd)
{
    EXPECT_EQ(gcd64(12, 18), 6);
    EXPECT_EQ(gcd64(17, 32), 1);
    EXPECT_EQ(gcd64(0, 5), 5);
    EXPECT_EQ(gcd64(5, 0), 5);
    EXPECT_EQ(gcd64(-12, 18), 6);
    EXPECT_EQ(gcd64(12, -18), 6);
    EXPECT_EQ(gcd64(0, 0), 0);
}

TEST(MathUtil, Lcm)
{
    EXPECT_EQ(lcm64(4, 6), 12);
    EXPECT_EQ(lcm64(1, 32), 32);
    EXPECT_EQ(lcm64(0, 7), 0);
    EXPECT_EQ(lcm64(8, 12, 16), 16) << "saturates at cap";
    EXPECT_EQ(lcm64(8, 12, 0), 24) << "no cap";
}

TEST(MathUtil, FloorMod)
{
    EXPECT_EQ(floor_mod(7, 4), 3);
    EXPECT_EQ(floor_mod(-1, 4), 3);
    EXPECT_EQ(floor_mod(-8, 4), 0);
    EXPECT_EQ(floor_mod(0, 4), 0);
}

TEST(Congruence, Construction)
{
    EXPECT_TRUE(Congruence::exact(5).is_exact());
    EXPECT_TRUE(Congruence::top().is_top());
    Congruence c = Congruence::mod(-3, 8);
    EXPECT_EQ(c.residue, 5);
    EXPECT_EQ(c.modulus, 8);
    EXPECT_TRUE(Congruence::mod(3, 1).is_top());
    EXPECT_TRUE(Congruence::mod(3, 0).is_exact());
}

TEST(Congruence, Add)
{
    Congruence a = Congruence::mod(1, 8);
    Congruence b = Congruence::mod(2, 4);
    Congruence s = a + b;
    EXPECT_EQ(s.modulus, 4);
    EXPECT_EQ(s.residue, 3);
    EXPECT_EQ((Congruence::exact(3) + Congruence::exact(4)).residue, 7);
    EXPECT_TRUE((a + Congruence::top()).is_top());
}

TEST(Congruence, MulByConstant)
{
    // x == 0 (mod 2), 16*x == 0 (mod 32).
    Congruence x = Congruence::mod(0, 2);
    Congruence r = Congruence::exact(16) * x;
    EXPECT_EQ(r.residue_mod(32), 0);
    // top * 32 == 0 (mod 32): multiples of 32.
    Congruence t = Congruence::top() * Congruence::exact(32);
    EXPECT_EQ(t.residue_mod(32), 0);
    EXPECT_EQ(t.residue_mod(16), 0);
    EXPECT_EQ(t.residue_mod(64), -1);
}

TEST(Congruence, ResidueMod)
{
    EXPECT_EQ(Congruence::exact(37).residue_mod(8), 5);
    EXPECT_EQ(Congruence::exact(-3).residue_mod(8), 5);
    EXPECT_EQ(Congruence::mod(5, 16).residue_mod(8), 5);
    EXPECT_EQ(Congruence::mod(5, 16).residue_mod(32), -1);
    EXPECT_EQ(Congruence::top().residue_mod(4), -1);
    // Everything is known modulo 1 (one-tile machines).
    EXPECT_EQ(Congruence::top().residue_mod(1), 0);
}

/** Property sweep: algebra consistent with integer arithmetic. */
class CongruenceProperty : public ::testing::TestWithParam<int>
{};

TEST_P(CongruenceProperty, SoundUnderSampling)
{
    int seed = GetParam();
    uint64_t s = static_cast<uint64_t>(seed) * 2654435761u + 1;
    auto rnd = [&] {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        return s;
    };
    int64_t m1 = 1 + static_cast<int64_t>(rnd() % 16);
    int64_t m2 = 1 + static_cast<int64_t>(rnd() % 16);
    int64_t r1 = static_cast<int64_t>(rnd() % m1);
    int64_t r2 = static_cast<int64_t>(rnd() % m2);
    Congruence a = Congruence::mod(r1, m1);
    Congruence b = Congruence::mod(r2, m2);
    // For all representatives x == r1 (mod m1), y == r2 (mod m2),
    // the claimed congruences for x+y, x-y, x*y must hold.
    for (int i = 0; i < 4; i++) {
        for (int j = 0; j < 4; j++) {
            int64_t x = r1 + i * m1;
            int64_t y = r2 + j * m2;
            Congruence sum = a + b;
            Congruence dif = a - b;
            Congruence prod = a * b;
            if (!sum.is_top())
                EXPECT_EQ(floor_mod(x + y, sum.modulus == 0
                                               ? INT64_MAX
                                               : sum.modulus),
                          sum.modulus == 0
                              ? x + y
                              : floor_mod(sum.residue, sum.modulus));
            if (!dif.is_top() && dif.modulus != 0)
                EXPECT_EQ(floor_mod(x - y, dif.modulus),
                          floor_mod(dif.residue, dif.modulus));
            if (!prod.is_top() && prod.modulus != 0)
                EXPECT_EQ(floor_mod(x * y, prod.modulus),
                          floor_mod(prod.residue, prod.modulus));
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Sweep, CongruenceProperty,
                         ::testing::Range(1, 40));

TEST(Error, FatalAndPanic)
{
    EXPECT_THROW(fatal("boom"), FatalError);
    EXPECT_THROW(panic("bug"), PanicError);
    EXPECT_NO_THROW(check(true, "fine"));
    EXPECT_THROW(check(false, "bad"), PanicError);
}

} // namespace
} // namespace raw
