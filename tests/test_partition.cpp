/**
 * @file
 * Instruction partitioner tests: DSC clustering, load-balance
 * merging, placement with pins, and end-to-end partition validity.
 */

#include <gtest/gtest.h>

#include <memory>
#include <random>

#include "analysis/liveness.hpp"
#include "analysis/replication.hpp"
#include "analysis/taskgraph.hpp"
#include "frontend/lower.hpp"
#include "frontend/parser.hpp"
#include "partition/partition.hpp"
#include "transform/congruence.hpp"
#include "transform/constfold.hpp"
#include "transform/rename.hpp"

namespace raw {
namespace {

struct Ctx
{
    Function fn;
    std::unique_ptr<ReplicationAnalysis> repl;
    std::unique_ptr<VarLiveness> live;
    HomeMap homes;
    std::unique_ptr<TaskGraph> graph;
    MachineConfig machine;
};

Ctx
make_ctx(const char *src, int n_tiles, int block = 0)
{
    Ctx c;
    c.fn = lower_program(parse_program(src));
    constfold_function(c.fn);
    rename_function(c.fn);
    c.repl =
        std::make_unique<ReplicationAnalysis>(c.fn, 8, 12, true);
    c.live = std::make_unique<VarLiveness>(c.fn);
    c.homes.n_tiles = n_tiles;
    c.homes.var_home.assign(c.fn.values.size(), 0);
    int next = 0;
    for (ValueId v : c.fn.var_ids())
        if (!c.repl->var_replicated(v)) {
            c.homes.var_home[v] = next;
            next = (next + 1) % n_tiles;
        }
    int64_t off = 0;
    for (const ArrayInfo &a : c.fn.arrays) {
        c.homes.array_base.push_back(off);
        off += a.size();
    }
    c.machine = MachineConfig::base(n_tiles);
    CongruenceMap cong(c.fn, block);
    c.graph = std::make_unique<TaskGraph>(c.fn, block, c.machine, cong,
                                          *c.repl, *c.live, c.homes);
    return c;
}

// A wide independent computation: 8 chains of float math.
const char *kWide = R"(
float A[8];
float B[8];
A[0] = 1.0; A[1] = 2.0; A[2] = 3.0; A[3] = 4.0;
A[4] = 5.0; A[5] = 6.0; A[6] = 7.0; A[7] = 8.0;
B[0] = A[0] * A[0] + 1.0;
B[1] = A[1] * A[1] + 1.0;
B[2] = A[2] * A[2] + 1.0;
B[3] = A[3] * A[3] + 1.0;
B[4] = A[4] * A[4] + 1.0;
B[5] = A[5] * A[5] + 1.0;
B[6] = A[6] * A[6] + 1.0;
B[7] = A[7] * A[7] + 1.0;
)";

TEST(Cluster, DSCProducesValidClustering)
{
    Ctx c = make_ctx(kWide, 4);
    PartitionOptions opts;
    Clustering cl = cluster_taskgraph(*c.graph, c.machine, opts);
    ASSERT_EQ(cl.cluster_of.size(), c.graph->nodes().size());
    for (size_t i = 0; i < cl.cluster_of.size(); i++) {
        ASSERT_GE(cl.cluster_of[i], 0);
        ASSERT_LT(cl.cluster_of[i], cl.n_clusters);
    }
    // Pinned nodes land in clusters pinned to the same tile.
    for (size_t i = 0; i < c.graph->nodes().size(); i++) {
        int pin = c.graph->nodes()[i].pin;
        if (pin >= 0)
            EXPECT_EQ(cl.pin_of[cl.cluster_of[i]], pin);
    }
}

TEST(Cluster, SerialChainStaysTogether)
{
    // A pure serial dependence chain has no parallelism to exploit:
    // DSC should not scatter it over many clusters.
    const char *chain = R"(
float A[1];
float x;
A[0] = 1.5;
x = A[0];
x = x * 1.5 + 0.5;
x = x * 1.5 + 0.5;
x = x * 1.5 + 0.5;
x = x * 1.5 + 0.5;
x = x * 1.5 + 0.5;
print(x);
)";
    Ctx c = make_ctx(chain, 4);
    PartitionOptions opts;
    Clustering cl = cluster_taskgraph(*c.graph, c.machine, opts);
    // Count clusters holding the fmul/fadd chain.
    std::set<int> chain_clusters;
    for (size_t i = 0; i < c.graph->nodes().size(); i++) {
        const TGNode &nd = c.graph->nodes()[i];
        if (nd.kind == TGKind::kInstr) {
            Op op = c.fn.blocks[0].instrs[nd.instr].op;
            if (op == Op::kFMul || op == Op::kFAdd)
                chain_clusters.insert(cl.cluster_of[i]);
        }
    }
    EXPECT_LE(chain_clusters.size(), 2u);
}

TEST(Merge, ProducesOnePartitionPerTile)
{
    Ctx c = make_ctx(kWide, 4);
    PartitionOptions opts;
    Clustering cl = cluster_taskgraph(*c.graph, c.machine, opts);
    Clustering m = merge_clusters(*c.graph, cl, c.machine);
    EXPECT_EQ(m.n_clusters, 4);
    // Load balance: no partition may hold everything when there are
    // plenty of free clusters.
    int64_t total = 0, biggest = 0;
    for (int p = 0; p < m.n_clusters; p++) {
        total += m.cost_of[p];
        biggest = std::max(biggest, m.cost_of[p]);
    }
    EXPECT_LT(biggest, total) << "work spread over > 1 partition";
}

TEST(Place, HonorsPinsAndImproves)
{
    Ctx c = make_ctx(kWide, 4);
    PartitionOptions opts;
    Clustering cl = cluster_taskgraph(*c.graph, c.machine, opts);
    Clustering m = merge_clusters(*c.graph, cl, c.machine);
    Partition arbitrary, greedy;
    opts.place_mode = PlaceMode::kArbitrary;
    arbitrary = place_partitions(*c.graph, m, c.machine, opts);
    opts.place_mode = PlaceMode::kGreedySwap;
    greedy = place_partitions(*c.graph, m, c.machine, opts);
    // Pins honored in both (checked internally; re-check here).
    for (size_t i = 0; i < c.graph->nodes().size(); i++) {
        int pin = c.graph->nodes()[i].pin;
        if (pin >= 0) {
            EXPECT_EQ(arbitrary.tile_of[i], pin);
            EXPECT_EQ(greedy.tile_of[i], pin);
        }
    }
}

TEST(Place, AnnealRunsAndHonorsPins)
{
    Ctx c = make_ctx(kWide, 8);
    PartitionOptions opts;
    opts.place_mode = PlaceMode::kAnneal;
    Partition p = partition_taskgraph(*c.graph, c.machine, opts);
    for (size_t i = 0; i < c.graph->nodes().size(); i++)
        if (c.graph->nodes()[i].pin >= 0)
            EXPECT_EQ(p.tile_of[i], c.graph->nodes()[i].pin);
}

TEST(Partition, SingleTileDegenerate)
{
    Ctx c = make_ctx(kWide, 1);
    PartitionOptions opts;
    Partition p = partition_taskgraph(*c.graph, c.machine, opts);
    for (int t : p.tile_of)
        EXPECT_EQ(t, 0);
    EXPECT_EQ(p.cross_edges, 0);
}

TEST(Partition, UnitNodesModeWorks)
{
    Ctx c = make_ctx(kWide, 4);
    PartitionOptions opts;
    opts.cluster_mode = ClusterMode::kUnitNodes;
    Partition p = partition_taskgraph(*c.graph, c.machine, opts);
    for (size_t i = 0; i < c.graph->nodes().size(); i++)
        if (c.graph->nodes()[i].pin >= 0)
            EXPECT_EQ(p.tile_of[i], c.graph->nodes()[i].pin);
}

TEST(Partition, CrossEdgesCounted)
{
    Ctx c = make_ctx(kWide, 4);
    PartitionOptions opts;
    Partition p = partition_taskgraph(*c.graph, c.machine, opts);
    int cross = 0;
    for (const TGEdge &e : c.graph->edges())
        if (p.tile_of[e.from] != p.tile_of[e.to])
            cross++;
    EXPECT_EQ(cross, p.cross_edges);
}

// Property: the O(n) incremental swap delta used by greedy-swap and
// anneal placement must equal the cost difference of two full O(n²)
// recomputes, for randomized traffic matrices and assignments.
TEST(Place, SwapDeltaMatchesFullRecompute)
{
    std::mt19937 rng(20260805);
    for (int trial = 0; trial < 200; trial++) {
        MachineConfig machine =
            MachineConfig::base(trial % 2 ? 4 : 16);
        std::uniform_int_distribution<int> n_dist(2, 12);
        const int n = n_dist(rng);
        std::uniform_int_distribution<int> w_dist(0, 1000);
        std::vector<std::vector<int>> w(n, std::vector<int>(n, 0));
        for (int a = 0; a < n; a++)
            for (int b = a + 1; b < n; b++)
                w[a][b] = w[b][a] = w_dist(rng);
        std::uniform_int_distribution<int> tile_dist(
            0, machine.n_tiles - 1);
        std::vector<int> tile_of(n);
        for (int a = 0; a < n; a++)
            tile_of[a] = tile_dist(rng);
        std::uniform_int_distribution<int> p_dist(0, n - 1);
        int i = p_dist(rng), j = p_dist(rng);
        if (i == j)
            continue;
        int64_t delta =
            placement_swap_delta(w, tile_of, machine, i, j);
        int64_t before =
            placement_assignment_cost(w, tile_of, machine);
        std::swap(tile_of[i], tile_of[j]);
        int64_t after =
            placement_assignment_cost(w, tile_of, machine);
        EXPECT_EQ(delta, after - before)
            << "trial " << trial << " i=" << i << " j=" << j;
    }
}

} // namespace
} // namespace raw
