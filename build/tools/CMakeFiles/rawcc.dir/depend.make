# Empty dependencies file for rawcc.
# This may be replaced when dependencies are built.
