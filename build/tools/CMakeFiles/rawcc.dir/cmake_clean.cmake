file(REMOVE_RECURSE
  "CMakeFiles/rawcc.dir/rawcc_main.cpp.o"
  "CMakeFiles/rawcc.dir/rawcc_main.cpp.o.d"
  "rawcc"
  "rawcc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rawcc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
