# Empty dependencies file for raw_machine.
# This may be replaced when dependencies are built.
