file(REMOVE_RECURSE
  "CMakeFiles/raw_machine.dir/machine/machine.cpp.o"
  "CMakeFiles/raw_machine.dir/machine/machine.cpp.o.d"
  "libraw_machine.a"
  "libraw_machine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/raw_machine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
