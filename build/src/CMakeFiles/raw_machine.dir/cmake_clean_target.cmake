file(REMOVE_RECURSE
  "libraw_machine.a"
)
