# Empty dependencies file for raw_partition.
# This may be replaced when dependencies are built.
