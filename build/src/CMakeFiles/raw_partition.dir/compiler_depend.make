# Empty compiler generated dependencies file for raw_partition.
# This may be replaced when dependencies are built.
