file(REMOVE_RECURSE
  "libraw_partition.a"
)
