file(REMOVE_RECURSE
  "CMakeFiles/raw_partition.dir/partition/cluster.cpp.o"
  "CMakeFiles/raw_partition.dir/partition/cluster.cpp.o.d"
  "CMakeFiles/raw_partition.dir/partition/merge.cpp.o"
  "CMakeFiles/raw_partition.dir/partition/merge.cpp.o.d"
  "CMakeFiles/raw_partition.dir/partition/place.cpp.o"
  "CMakeFiles/raw_partition.dir/partition/place.cpp.o.d"
  "libraw_partition.a"
  "libraw_partition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/raw_partition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
