# Empty dependencies file for raw_transform.
# This may be replaced when dependencies are built.
