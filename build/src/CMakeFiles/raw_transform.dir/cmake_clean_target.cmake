file(REMOVE_RECURSE
  "libraw_transform.a"
)
