# Empty compiler generated dependencies file for raw_transform.
# This may be replaced when dependencies are built.
