
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/transform/congruence.cpp" "src/CMakeFiles/raw_transform.dir/transform/congruence.cpp.o" "gcc" "src/CMakeFiles/raw_transform.dir/transform/congruence.cpp.o.d"
  "/root/repo/src/transform/constfold.cpp" "src/CMakeFiles/raw_transform.dir/transform/constfold.cpp.o" "gcc" "src/CMakeFiles/raw_transform.dir/transform/constfold.cpp.o.d"
  "/root/repo/src/transform/rename.cpp" "src/CMakeFiles/raw_transform.dir/transform/rename.cpp.o" "gcc" "src/CMakeFiles/raw_transform.dir/transform/rename.cpp.o.d"
  "/root/repo/src/transform/simplify.cpp" "src/CMakeFiles/raw_transform.dir/transform/simplify.cpp.o" "gcc" "src/CMakeFiles/raw_transform.dir/transform/simplify.cpp.o.d"
  "/root/repo/src/transform/split.cpp" "src/CMakeFiles/raw_transform.dir/transform/split.cpp.o" "gcc" "src/CMakeFiles/raw_transform.dir/transform/split.cpp.o.d"
  "/root/repo/src/transform/strength.cpp" "src/CMakeFiles/raw_transform.dir/transform/strength.cpp.o" "gcc" "src/CMakeFiles/raw_transform.dir/transform/strength.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/raw_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/raw_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/raw_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
