file(REMOVE_RECURSE
  "CMakeFiles/raw_transform.dir/transform/congruence.cpp.o"
  "CMakeFiles/raw_transform.dir/transform/congruence.cpp.o.d"
  "CMakeFiles/raw_transform.dir/transform/constfold.cpp.o"
  "CMakeFiles/raw_transform.dir/transform/constfold.cpp.o.d"
  "CMakeFiles/raw_transform.dir/transform/rename.cpp.o"
  "CMakeFiles/raw_transform.dir/transform/rename.cpp.o.d"
  "CMakeFiles/raw_transform.dir/transform/simplify.cpp.o"
  "CMakeFiles/raw_transform.dir/transform/simplify.cpp.o.d"
  "CMakeFiles/raw_transform.dir/transform/split.cpp.o"
  "CMakeFiles/raw_transform.dir/transform/split.cpp.o.d"
  "CMakeFiles/raw_transform.dir/transform/strength.cpp.o"
  "CMakeFiles/raw_transform.dir/transform/strength.cpp.o.d"
  "libraw_transform.a"
  "libraw_transform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/raw_transform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
