# Empty compiler generated dependencies file for raw_frontend.
# This may be replaced when dependencies are built.
