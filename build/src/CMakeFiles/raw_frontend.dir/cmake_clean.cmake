file(REMOVE_RECURSE
  "CMakeFiles/raw_frontend.dir/frontend/ast.cpp.o"
  "CMakeFiles/raw_frontend.dir/frontend/ast.cpp.o.d"
  "CMakeFiles/raw_frontend.dir/frontend/lexer.cpp.o"
  "CMakeFiles/raw_frontend.dir/frontend/lexer.cpp.o.d"
  "CMakeFiles/raw_frontend.dir/frontend/lower.cpp.o"
  "CMakeFiles/raw_frontend.dir/frontend/lower.cpp.o.d"
  "CMakeFiles/raw_frontend.dir/frontend/parser.cpp.o"
  "CMakeFiles/raw_frontend.dir/frontend/parser.cpp.o.d"
  "CMakeFiles/raw_frontend.dir/frontend/unroll.cpp.o"
  "CMakeFiles/raw_frontend.dir/frontend/unroll.cpp.o.d"
  "libraw_frontend.a"
  "libraw_frontend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/raw_frontend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
