
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/frontend/ast.cpp" "src/CMakeFiles/raw_frontend.dir/frontend/ast.cpp.o" "gcc" "src/CMakeFiles/raw_frontend.dir/frontend/ast.cpp.o.d"
  "/root/repo/src/frontend/lexer.cpp" "src/CMakeFiles/raw_frontend.dir/frontend/lexer.cpp.o" "gcc" "src/CMakeFiles/raw_frontend.dir/frontend/lexer.cpp.o.d"
  "/root/repo/src/frontend/lower.cpp" "src/CMakeFiles/raw_frontend.dir/frontend/lower.cpp.o" "gcc" "src/CMakeFiles/raw_frontend.dir/frontend/lower.cpp.o.d"
  "/root/repo/src/frontend/parser.cpp" "src/CMakeFiles/raw_frontend.dir/frontend/parser.cpp.o" "gcc" "src/CMakeFiles/raw_frontend.dir/frontend/parser.cpp.o.d"
  "/root/repo/src/frontend/unroll.cpp" "src/CMakeFiles/raw_frontend.dir/frontend/unroll.cpp.o" "gcc" "src/CMakeFiles/raw_frontend.dir/frontend/unroll.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/raw_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/raw_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/raw_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
