file(REMOVE_RECURSE
  "libraw_frontend.a"
)
