file(REMOVE_RECURSE
  "libraw_sim.a"
)
