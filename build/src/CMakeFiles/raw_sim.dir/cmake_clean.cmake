file(REMOVE_RECURSE
  "CMakeFiles/raw_sim.dir/sim/disasm.cpp.o"
  "CMakeFiles/raw_sim.dir/sim/disasm.cpp.o.d"
  "CMakeFiles/raw_sim.dir/sim/dynamic_network.cpp.o"
  "CMakeFiles/raw_sim.dir/sim/dynamic_network.cpp.o.d"
  "CMakeFiles/raw_sim.dir/sim/isa.cpp.o"
  "CMakeFiles/raw_sim.dir/sim/isa.cpp.o.d"
  "CMakeFiles/raw_sim.dir/sim/memory.cpp.o"
  "CMakeFiles/raw_sim.dir/sim/memory.cpp.o.d"
  "CMakeFiles/raw_sim.dir/sim/processor.cpp.o"
  "CMakeFiles/raw_sim.dir/sim/processor.cpp.o.d"
  "CMakeFiles/raw_sim.dir/sim/simulator.cpp.o"
  "CMakeFiles/raw_sim.dir/sim/simulator.cpp.o.d"
  "CMakeFiles/raw_sim.dir/sim/switch.cpp.o"
  "CMakeFiles/raw_sim.dir/sim/switch.cpp.o.d"
  "libraw_sim.a"
  "libraw_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/raw_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
