
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/disasm.cpp" "src/CMakeFiles/raw_sim.dir/sim/disasm.cpp.o" "gcc" "src/CMakeFiles/raw_sim.dir/sim/disasm.cpp.o.d"
  "/root/repo/src/sim/dynamic_network.cpp" "src/CMakeFiles/raw_sim.dir/sim/dynamic_network.cpp.o" "gcc" "src/CMakeFiles/raw_sim.dir/sim/dynamic_network.cpp.o.d"
  "/root/repo/src/sim/isa.cpp" "src/CMakeFiles/raw_sim.dir/sim/isa.cpp.o" "gcc" "src/CMakeFiles/raw_sim.dir/sim/isa.cpp.o.d"
  "/root/repo/src/sim/memory.cpp" "src/CMakeFiles/raw_sim.dir/sim/memory.cpp.o" "gcc" "src/CMakeFiles/raw_sim.dir/sim/memory.cpp.o.d"
  "/root/repo/src/sim/processor.cpp" "src/CMakeFiles/raw_sim.dir/sim/processor.cpp.o" "gcc" "src/CMakeFiles/raw_sim.dir/sim/processor.cpp.o.d"
  "/root/repo/src/sim/simulator.cpp" "src/CMakeFiles/raw_sim.dir/sim/simulator.cpp.o" "gcc" "src/CMakeFiles/raw_sim.dir/sim/simulator.cpp.o.d"
  "/root/repo/src/sim/switch.cpp" "src/CMakeFiles/raw_sim.dir/sim/switch.cpp.o" "gcc" "src/CMakeFiles/raw_sim.dir/sim/switch.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/raw_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/raw_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/raw_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
