# Empty compiler generated dependencies file for raw_sim.
# This may be replaced when dependencies are built.
