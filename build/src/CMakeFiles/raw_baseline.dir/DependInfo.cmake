
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baseline/baseline.cpp" "src/CMakeFiles/raw_baseline.dir/baseline/baseline.cpp.o" "gcc" "src/CMakeFiles/raw_baseline.dir/baseline/baseline.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/raw_rawcc.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/raw_schedule.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/raw_partition.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/raw_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/raw_transform.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/raw_frontend.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/raw_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/raw_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/raw_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/raw_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
