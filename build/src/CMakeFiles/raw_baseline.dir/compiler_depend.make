# Empty compiler generated dependencies file for raw_baseline.
# This may be replaced when dependencies are built.
