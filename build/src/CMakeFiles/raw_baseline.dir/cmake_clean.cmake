file(REMOVE_RECURSE
  "CMakeFiles/raw_baseline.dir/baseline/baseline.cpp.o"
  "CMakeFiles/raw_baseline.dir/baseline/baseline.cpp.o.d"
  "libraw_baseline.a"
  "libraw_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/raw_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
