file(REMOVE_RECURSE
  "libraw_baseline.a"
)
