file(REMOVE_RECURSE
  "libraw_support.a"
)
