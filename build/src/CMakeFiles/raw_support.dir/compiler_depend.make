# Empty compiler generated dependencies file for raw_support.
# This may be replaced when dependencies are built.
