file(REMOVE_RECURSE
  "CMakeFiles/raw_support.dir/support/error.cpp.o"
  "CMakeFiles/raw_support.dir/support/error.cpp.o.d"
  "CMakeFiles/raw_support.dir/support/mathutil.cpp.o"
  "CMakeFiles/raw_support.dir/support/mathutil.cpp.o.d"
  "libraw_support.a"
  "libraw_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/raw_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
