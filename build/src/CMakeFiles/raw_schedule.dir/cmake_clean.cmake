file(REMOVE_RECURSE
  "CMakeFiles/raw_schedule.dir/schedule/comm.cpp.o"
  "CMakeFiles/raw_schedule.dir/schedule/comm.cpp.o.d"
  "CMakeFiles/raw_schedule.dir/schedule/event_scheduler.cpp.o"
  "CMakeFiles/raw_schedule.dir/schedule/event_scheduler.cpp.o.d"
  "libraw_schedule.a"
  "libraw_schedule.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/raw_schedule.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
