# Empty compiler generated dependencies file for raw_schedule.
# This may be replaced when dependencies are built.
