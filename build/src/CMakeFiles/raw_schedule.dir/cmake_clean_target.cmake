file(REMOVE_RECURSE
  "libraw_schedule.a"
)
