# Empty compiler generated dependencies file for raw_ir.
# This may be replaced when dependencies are built.
