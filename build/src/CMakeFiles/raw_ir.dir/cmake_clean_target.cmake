file(REMOVE_RECURSE
  "libraw_ir.a"
)
