file(REMOVE_RECURSE
  "CMakeFiles/raw_ir.dir/ir/builder.cpp.o"
  "CMakeFiles/raw_ir.dir/ir/builder.cpp.o.d"
  "CMakeFiles/raw_ir.dir/ir/eval.cpp.o"
  "CMakeFiles/raw_ir.dir/ir/eval.cpp.o.d"
  "CMakeFiles/raw_ir.dir/ir/function.cpp.o"
  "CMakeFiles/raw_ir.dir/ir/function.cpp.o.d"
  "CMakeFiles/raw_ir.dir/ir/instr.cpp.o"
  "CMakeFiles/raw_ir.dir/ir/instr.cpp.o.d"
  "CMakeFiles/raw_ir.dir/ir/opcode.cpp.o"
  "CMakeFiles/raw_ir.dir/ir/opcode.cpp.o.d"
  "CMakeFiles/raw_ir.dir/ir/printer.cpp.o"
  "CMakeFiles/raw_ir.dir/ir/printer.cpp.o.d"
  "CMakeFiles/raw_ir.dir/ir/type.cpp.o"
  "CMakeFiles/raw_ir.dir/ir/type.cpp.o.d"
  "CMakeFiles/raw_ir.dir/ir/verifier.cpp.o"
  "CMakeFiles/raw_ir.dir/ir/verifier.cpp.o.d"
  "libraw_ir.a"
  "libraw_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/raw_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
