
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ir/builder.cpp" "src/CMakeFiles/raw_ir.dir/ir/builder.cpp.o" "gcc" "src/CMakeFiles/raw_ir.dir/ir/builder.cpp.o.d"
  "/root/repo/src/ir/eval.cpp" "src/CMakeFiles/raw_ir.dir/ir/eval.cpp.o" "gcc" "src/CMakeFiles/raw_ir.dir/ir/eval.cpp.o.d"
  "/root/repo/src/ir/function.cpp" "src/CMakeFiles/raw_ir.dir/ir/function.cpp.o" "gcc" "src/CMakeFiles/raw_ir.dir/ir/function.cpp.o.d"
  "/root/repo/src/ir/instr.cpp" "src/CMakeFiles/raw_ir.dir/ir/instr.cpp.o" "gcc" "src/CMakeFiles/raw_ir.dir/ir/instr.cpp.o.d"
  "/root/repo/src/ir/opcode.cpp" "src/CMakeFiles/raw_ir.dir/ir/opcode.cpp.o" "gcc" "src/CMakeFiles/raw_ir.dir/ir/opcode.cpp.o.d"
  "/root/repo/src/ir/printer.cpp" "src/CMakeFiles/raw_ir.dir/ir/printer.cpp.o" "gcc" "src/CMakeFiles/raw_ir.dir/ir/printer.cpp.o.d"
  "/root/repo/src/ir/type.cpp" "src/CMakeFiles/raw_ir.dir/ir/type.cpp.o" "gcc" "src/CMakeFiles/raw_ir.dir/ir/type.cpp.o.d"
  "/root/repo/src/ir/verifier.cpp" "src/CMakeFiles/raw_ir.dir/ir/verifier.cpp.o" "gcc" "src/CMakeFiles/raw_ir.dir/ir/verifier.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/raw_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/raw_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
