file(REMOVE_RECURSE
  "libraw_harness.a"
)
