file(REMOVE_RECURSE
  "CMakeFiles/raw_rawcc.dir/rawcc/compiler.cpp.o"
  "CMakeFiles/raw_rawcc.dir/rawcc/compiler.cpp.o.d"
  "CMakeFiles/raw_rawcc.dir/rawcc/data_partitioner.cpp.o"
  "CMakeFiles/raw_rawcc.dir/rawcc/data_partitioner.cpp.o.d"
  "CMakeFiles/raw_rawcc.dir/rawcc/linker.cpp.o"
  "CMakeFiles/raw_rawcc.dir/rawcc/linker.cpp.o.d"
  "CMakeFiles/raw_rawcc.dir/rawcc/orchestrater.cpp.o"
  "CMakeFiles/raw_rawcc.dir/rawcc/orchestrater.cpp.o.d"
  "CMakeFiles/raw_rawcc.dir/rawcc/portfold.cpp.o"
  "CMakeFiles/raw_rawcc.dir/rawcc/portfold.cpp.o.d"
  "CMakeFiles/raw_rawcc.dir/rawcc/regalloc.cpp.o"
  "CMakeFiles/raw_rawcc.dir/rawcc/regalloc.cpp.o.d"
  "libraw_rawcc.a"
  "libraw_rawcc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/raw_rawcc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
