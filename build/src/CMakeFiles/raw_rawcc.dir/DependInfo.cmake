
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rawcc/compiler.cpp" "src/CMakeFiles/raw_rawcc.dir/rawcc/compiler.cpp.o" "gcc" "src/CMakeFiles/raw_rawcc.dir/rawcc/compiler.cpp.o.d"
  "/root/repo/src/rawcc/data_partitioner.cpp" "src/CMakeFiles/raw_rawcc.dir/rawcc/data_partitioner.cpp.o" "gcc" "src/CMakeFiles/raw_rawcc.dir/rawcc/data_partitioner.cpp.o.d"
  "/root/repo/src/rawcc/linker.cpp" "src/CMakeFiles/raw_rawcc.dir/rawcc/linker.cpp.o" "gcc" "src/CMakeFiles/raw_rawcc.dir/rawcc/linker.cpp.o.d"
  "/root/repo/src/rawcc/orchestrater.cpp" "src/CMakeFiles/raw_rawcc.dir/rawcc/orchestrater.cpp.o" "gcc" "src/CMakeFiles/raw_rawcc.dir/rawcc/orchestrater.cpp.o.d"
  "/root/repo/src/rawcc/portfold.cpp" "src/CMakeFiles/raw_rawcc.dir/rawcc/portfold.cpp.o" "gcc" "src/CMakeFiles/raw_rawcc.dir/rawcc/portfold.cpp.o.d"
  "/root/repo/src/rawcc/regalloc.cpp" "src/CMakeFiles/raw_rawcc.dir/rawcc/regalloc.cpp.o" "gcc" "src/CMakeFiles/raw_rawcc.dir/rawcc/regalloc.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/raw_schedule.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/raw_transform.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/raw_frontend.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/raw_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/raw_partition.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/raw_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/raw_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/raw_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/raw_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
