# Empty dependencies file for raw_programs.
# This may be replaced when dependencies are built.
