file(REMOVE_RECURSE
  "libraw_programs.a"
)
