
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/programs/fpppp_gen.cpp" "src/CMakeFiles/raw_programs.dir/programs/fpppp_gen.cpp.o" "gcc" "src/CMakeFiles/raw_programs.dir/programs/fpppp_gen.cpp.o.d"
  "/root/repo/src/programs/programs.cpp" "src/CMakeFiles/raw_programs.dir/programs/programs.cpp.o" "gcc" "src/CMakeFiles/raw_programs.dir/programs/programs.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/raw_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
