file(REMOVE_RECURSE
  "CMakeFiles/raw_programs.dir/programs/fpppp_gen.cpp.o"
  "CMakeFiles/raw_programs.dir/programs/fpppp_gen.cpp.o.d"
  "CMakeFiles/raw_programs.dir/programs/programs.cpp.o"
  "CMakeFiles/raw_programs.dir/programs/programs.cpp.o.d"
  "libraw_programs.a"
  "libraw_programs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/raw_programs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
