# Empty compiler generated dependencies file for raw_programs.
# This may be replaced when dependencies are built.
