file(REMOVE_RECURSE
  "CMakeFiles/raw_analysis.dir/analysis/liveness.cpp.o"
  "CMakeFiles/raw_analysis.dir/analysis/liveness.cpp.o.d"
  "CMakeFiles/raw_analysis.dir/analysis/replication.cpp.o"
  "CMakeFiles/raw_analysis.dir/analysis/replication.cpp.o.d"
  "CMakeFiles/raw_analysis.dir/analysis/taskgraph.cpp.o"
  "CMakeFiles/raw_analysis.dir/analysis/taskgraph.cpp.o.d"
  "libraw_analysis.a"
  "libraw_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/raw_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
