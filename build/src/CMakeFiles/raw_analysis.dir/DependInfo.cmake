
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/liveness.cpp" "src/CMakeFiles/raw_analysis.dir/analysis/liveness.cpp.o" "gcc" "src/CMakeFiles/raw_analysis.dir/analysis/liveness.cpp.o.d"
  "/root/repo/src/analysis/replication.cpp" "src/CMakeFiles/raw_analysis.dir/analysis/replication.cpp.o" "gcc" "src/CMakeFiles/raw_analysis.dir/analysis/replication.cpp.o.d"
  "/root/repo/src/analysis/taskgraph.cpp" "src/CMakeFiles/raw_analysis.dir/analysis/taskgraph.cpp.o" "gcc" "src/CMakeFiles/raw_analysis.dir/analysis/taskgraph.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/raw_transform.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/raw_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/raw_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/raw_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
