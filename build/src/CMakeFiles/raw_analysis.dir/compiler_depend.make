# Empty compiler generated dependencies file for raw_analysis.
# This may be replaced when dependencies are built.
