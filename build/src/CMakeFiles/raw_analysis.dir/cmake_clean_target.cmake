file(REMOVE_RECURSE
  "libraw_analysis.a"
)
