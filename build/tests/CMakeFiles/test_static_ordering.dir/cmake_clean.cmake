file(REMOVE_RECURSE
  "CMakeFiles/test_static_ordering.dir/test_static_ordering.cpp.o"
  "CMakeFiles/test_static_ordering.dir/test_static_ordering.cpp.o.d"
  "test_static_ordering"
  "test_static_ordering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_static_ordering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
