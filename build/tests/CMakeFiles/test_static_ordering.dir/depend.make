# Empty dependencies file for test_static_ordering.
# This may be replaced when dependencies are built.
