# Empty dependencies file for test_dynnet.
# This may be replaced when dependencies are built.
