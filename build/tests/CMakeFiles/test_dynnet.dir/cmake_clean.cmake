file(REMOVE_RECURSE
  "CMakeFiles/test_dynnet.dir/test_dynnet.cpp.o"
  "CMakeFiles/test_dynnet.dir/test_dynnet.cpp.o.d"
  "test_dynnet"
  "test_dynnet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dynnet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
