file(REMOVE_RECURSE
  "CMakeFiles/test_endtoend.dir/test_endtoend.cpp.o"
  "CMakeFiles/test_endtoend.dir/test_endtoend.cpp.o.d"
  "test_endtoend"
  "test_endtoend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_endtoend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
