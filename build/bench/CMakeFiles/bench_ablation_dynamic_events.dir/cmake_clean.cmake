file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_dynamic_events.dir/bench_ablation_dynamic_events.cpp.o"
  "CMakeFiles/bench_ablation_dynamic_events.dir/bench_ablation_dynamic_events.cpp.o.d"
  "bench_ablation_dynamic_events"
  "bench_ablation_dynamic_events.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_dynamic_events.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
