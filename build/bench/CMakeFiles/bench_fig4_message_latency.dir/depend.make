# Empty dependencies file for bench_fig4_message_latency.
# This may be replaced when dependencies are built.
