# Empty dependencies file for bench_ablation_homes.
# This may be replaced when dependencies are built.
