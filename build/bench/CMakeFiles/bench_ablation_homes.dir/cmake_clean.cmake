file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_homes.dir/bench_ablation_homes.cpp.o"
  "CMakeFiles/bench_ablation_homes.dir/bench_ablation_homes.cpp.o.d"
  "bench_ablation_homes"
  "bench_ablation_homes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_homes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
