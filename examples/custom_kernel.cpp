/**
 * @file
 * Example: tour of the compiler's internals on a custom kernel.
 *
 * Compiles a small dot-product kernel, then prints the compile
 * statistics a compiler engineer would look at — unroll decisions,
 * static vs. dynamic memory references, replicated vs. broadcast
 * branches, spills, per-block scheduler makespans — and the exact
 * instruction streams for one tile and its switch.
 */

#include <cstdio>

#include "harness/harness.hpp"
#include "sim/disasm.hpp"

int
main()
{
    using namespace raw;
    const char *src = R"(
float a[64];
float b[64];
float dot0; float dot1;
int i;
for (i = 0; i < 64; i = i + 1) {
  a[i] = (float)(i % 9) * 0.25;
  b[i] = (float)((3 * i) % 7) * 0.5;
}
dot0 = 0.0;
dot1 = 0.0;
// Two interleaved partial sums expose ILP across tiles.
for (i = 0; i < 64; i = i + 2) {
  dot0 = dot0 + a[i] * b[i];
  dot1 = dot1 + a[i+1] * b[i+1];
}
print(dot0 + dot1);
)";

    MachineConfig machine = MachineConfig::base(4);
    CompileOutput out = compile_source(src, machine, CompilerOptions{});

    std::printf("== compile statistics (4 tiles) ==\n");
    std::printf("loops seen/unrolled/peeled: %d/%d/%d\n",
                out.stats.unroll.loops_seen,
                out.stats.unroll.loops_unrolled,
                out.stats.unroll.loops_peeled);
    std::printf("dynamic-network references:  %d\n",
                out.stats.dynamic_refs);
    std::printf("replicated / broadcast branches: %d / %d\n",
                out.stats.replicated_branches,
                out.stats.broadcast_branches);
    std::printf("spill ops: %lld, IR instrs: %lld, machine instrs: "
                "%lld\n",
                static_cast<long long>(out.stats.spill_ops),
                static_cast<long long>(out.stats.ir_instrs),
                static_cast<long long>(out.stats.static_instrs));
    std::printf("per-block scheduler makespans:");
    for (size_t b = 0;
         b < out.stats.block_makespan.size() && b < 12; b++)
        std::printf(" %lld",
                    static_cast<long long>(out.stats.block_makespan[b]));
    std::printf("%s\n\n",
                out.stats.block_makespan.size() > 12 ? " ..." : "");

    std::printf("== tile 0 streams ==\n");
    CompiledProgram one_tile = out.program;
    // Print only tile 0's processor and switch streams.
    std::printf("processor:\n");
    for (size_t k = 0; k < out.program.tiles[0].code.size() && k < 40;
         k++)
        std::printf("  %2zu: %s\n", k,
                    disasm_pinstr(out.program.tiles[0].code[k],
                                  out.program)
                        .c_str());
    std::printf("switch:\n");
    for (size_t k = 0;
         k < out.program.switches[0].code.size() && k < 20; k++)
        std::printf("  %2zu: %s\n", k,
                    disasm_sinstr(out.program.switches[0].code[k])
                        .c_str());

    Simulator sim(out.program);
    SimResult r = sim.run();
    RunResult base = run_baseline(src);
    std::printf("\nresult: %s", r.print_text().c_str());
    std::printf("cycles: %lld (baseline %lld, speedup %.2f)\n",
                static_cast<long long>(r.cycles),
                static_cast<long long>(base.cycles),
                static_cast<double>(base.cycles) /
                    static_cast<double>(r.cycles));
    std::printf("baseline result matches: %s\n",
                base.prints == r.print_text() ? "yes" : "NO");
    return 0;
}
