/**
 * @file
 * Example: histogram with data-dependent indexing — the dynamic
 * network's reason to exist (Section 5.1).
 *
 * `bins[key[i]]` cannot satisfy the static reference property: the
 * home tile of each access depends on runtime data.  The compiler
 * classifies those references as dynamic and the simulator carries
 * them over the wormhole-routed dynamic network to remote-memory
 * handlers, while everything else (the key array accesses, the loop
 * control) stays on the static network.
 */

#include <cstdio>

#include "harness/harness.hpp"

int
main()
{
    using namespace raw;
    const char *src = R"(
int key[96];
int bins[16];
int i;
for (i = 0; i < 16; i = i + 1) { bins[i] = 0; }
for (i = 0; i < 96; i = i + 1) {
  key[i] = (i * i + 3 * i) % 16;
}
// Data-dependent update: bins[key[i]] is statically unanalyzable.
for (i = 0; i < 96; i = i + 1) {
  bins[key[i]] = bins[key[i]] + 1;
}
for (i = 0; i < 16; i = i + 1) {
  print(bins[i]);
}
)";

    RunResult base = run_baseline(src, "bins");
    std::printf("histogram: 96 keys into 16 bins\n");
    std::printf("%-6s %-10s %-10s %-12s %-9s\n", "tiles", "cycles",
                "dyn msgs", "dyn refs", "verified");
    for (int n : {1, 2, 4, 8, 16}) {
        RunResult par =
            run_rawcc(src, MachineConfig::base(n), "bins");
        bool ok = par.check_words == base.check_words &&
                  par.prints == base.prints;
        std::printf("%-6d %-10lld %-10lld %-12d %-9s\n", n,
                    static_cast<long long>(par.cycles),
                    static_cast<long long>(par.sim.dyn_messages),
                    par.stats.dynamic_refs, ok ? "yes" : "NO");
    }
    std::printf("\nbin counts: %s", base.prints.c_str());
    std::printf("(one tile keeps everything local; multi-tile runs "
                "pay dynamic-network\nround trips per data-dependent "
                "access — the cost Section 5.3's staticization\n"
                "avoids wherever indices are affine)\n");
    return 0;
}
