/**
 * @file
 * Quickstart: the paper's Figure 6 example, end to end.
 *
 * Compiles the four-statement program of Figure 6 for a 1x2 Raw
 * machine, showing each artifact the basic block orchestrater
 * produces: the IR after initial code transformation, the final
 * per-tile processor streams and per-switch route streams, and the
 * simulated execution.
 *
 * Build & run:  ./examples/quickstart
 */

#include <cstdio>

#include "harness/harness.hpp"
#include "ir/printer.hpp"
#include "sim/disasm.hpp"

int
main()
{
    const char *src = R"(
// Figure 6 input program.  a and b are read from memory so the
// computation is opaque to constant folding and the space-time
// schedule of the paper's example is visible.
int in[2];
in[0] = 5;
in[1] = 7;
int a; int b;
a = in[0];
b = in[1];
int x; int y; int z;
y = a + b;
z = a * a;
x = y * a * 5;
y = y * b * 6;
print(x);
print(y);
print(z);
)";

    std::printf("---- source ----\n%s\n", src);

    raw::MachineConfig machine = raw::MachineConfig::base(2);
    raw::CompilerOptions opts;
    raw::CompileOutput out = raw::compile_source(src, machine, opts);

    std::printf("---- IR after renaming (single-assignment form, "
                "write-backs trailing) ----\n%s\n",
                raw::print_function(out.fn).c_str());

    std::printf("---- space-time schedule: per-tile and per-switch "
                "streams ----\n%s\n",
                raw::disasm_program(out.program).c_str());

    raw::Simulator sim(out.program);
    raw::SimResult r = sim.run();
    std::printf("---- execution ----\n");
    std::printf("prints (expect 300, 504, 25):\n%s",
                r.print_text().c_str());
    std::printf("cycles: %lld on %s\n",
                static_cast<long long>(r.cycles),
                machine.name().c_str());

    raw::RunResult base = raw::run_baseline(src);
    std::printf("sequential baseline: %lld cycles -> speedup %.2f\n",
                static_cast<long long>(base.cycles),
                static_cast<double>(base.cycles) /
                    static_cast<double>(r.cycles));
    return 0;
}
