/**
 * @file
 * Example: a five-point stencil with cache-miss injection.
 *
 * Shows two things beyond the quickstart: writing your own rawc
 * kernel, and the Appendix A static ordering property — randomly
 * injected memory latency (modeling cache misses) changes execution
 * time but never the results, because blocking port semantics keep
 * every tile's communication in its scheduled order.
 */

#include <cstdio>

#include "harness/harness.hpp"

int
main()
{
    using namespace raw;
    const char *src = R"(
float grid[24][24];
float next[24][24];
int i; int j; int t;
for (i = 0; i < 24; i = i + 1) {
  for (j = 0; j < 24; j = j + 1) {
    grid[i][j] = (float)((i * 13 + j * 5) % 17) * 0.5;
    next[i][j] = 0.0;
  }
}
for (t = 0; t < 3; t = t + 1) {
  for (i = 1; i < 23; i = i + 1) {
    for (j = 1; j < 23; j = j + 1) {
      next[i][j] = 0.2 * (grid[i][j] + grid[i-1][j] + grid[i+1][j]
                 + grid[i][j-1] + grid[i][j+1]);
    }
  }
  for (i = 1; i < 23; i = i + 1) {
    for (j = 1; j < 23; j = j + 1) {
      grid[i][j] = next[i][j];
    }
  }
}
print(grid[12][12]);
)";

    MachineConfig machine = MachineConfig::base(16);
    CompileOutput out = compile_source(src, machine, CompilerOptions{});

    std::printf("stencil on %s\n", machine.name().c_str());
    std::printf("%-22s %-12s %-14s\n", "miss rate (20cy each)",
                "cycles", "grid[12][12]");
    std::vector<uint32_t> ref;
    for (double rate : {0.0, 0.05, 0.20}) {
        FaultConfig f;
        f.miss_rate = rate;
        f.penalty = 20;
        f.seed = 7;
        Simulator sim(out.program, f);
        SimResult r = sim.run();
        std::vector<uint32_t> words = sim.read_array("grid");
        std::printf("%-22.2f %-12lld %-14.6f %s\n", rate,
                    static_cast<long long>(r.cycles),
                    bits_float(r.prints[0].bits),
                    !ref.empty() && words != ref
                        ? "RESULT CHANGED (BUG)"
                        : "");
        if (ref.empty())
            ref = words;
    }
    std::printf("timing varies, results do not: the static ordering "
                "property (Appendix A).\n");
    return 0;
}
