/**
 * @file
 * Example: dense matrix multiply across machine sizes.
 *
 * Demonstrates the public API on a realistic kernel: compile the mxm
 * benchmark for every Table 3 machine size, verify results against
 * the sequential baseline, and report the scaling curve plus compile
 * statistics (static/dynamic references, spills, replicated control).
 */

#include <cstdio>

#include "harness/harness.hpp"

int
main()
{
    using namespace raw;
    const BenchmarkProgram &prog = benchmark("mxm");

    RunResult base = run_baseline(prog.source, prog.check_array);
    std::printf("mxm: C[32x8] = A[32x64] * B[64x8]\n");
    std::printf("sequential baseline: %lld cycles\n\n",
                static_cast<long long>(base.cycles));
    std::printf("%-6s %-12s %-9s %-8s %-8s %-8s\n", "tiles", "cycles",
                "speedup", "dynrefs", "spills", "verified");

    for (int n : {1, 2, 4, 8, 16, 32}) {
        RunResult par = run_rawcc(prog.source, MachineConfig::base(n),
                                  prog.check_array);
        bool ok = par.check_words == base.check_words &&
                  par.prints == base.prints;
        std::printf("%-6d %-12lld %-9.2f %-8d %-8lld %-8s\n", n,
                    static_cast<long long>(par.cycles),
                    static_cast<double>(base.cycles) /
                        static_cast<double>(par.cycles),
                    par.stats.dynamic_refs,
                    static_cast<long long>(par.stats.spill_ops),
                    ok ? "yes" : "NO");
    }
    return 0;
}
