/**
 * @file
 * Figure 4 reproduction: the end-to-end latency of a single-word
 * message between neighboring tiles is four cycles (send, route on
 * the source switch, route on the destination switch, receive) — and
 * the effective overhead is two cycles when the send and receive do
 * useful computation.
 *
 * We hand-assemble the exact programs of the figure on a 1x2 machine
 * and count cycles, then measure per-hop scaling on a 1x8 machine.
 */

#include <cstdio>

#include "sim/simulator.hpp"

namespace {

using namespace raw;

/** Build the Figure 4 ping: tile0 computes x+y and sends; tile1
 *  receives into z=w+recv(). */
CompiledProgram
figure4_program(const MachineConfig &m, int dest_tile)
{
    CompiledProgram cp;
    cp.machine = m;
    cp.tiles.resize(m.n_tiles);
    cp.switches.resize(m.n_tiles);
    cp.total_words = 0;

    auto pi = [](Op op, int dst, int a = -1, int b = -1) {
        PInstr p;
        p.op = op;
        p.dst = dst;
        p.src[0] = a;
        p.src[1] = b;
        return p;
    };

    // Tile 0: r1 = 3; r2 = 4; r3 = r1 + r2 ("send(x+y)"); send r3.
    auto &t0 = cp.tiles[0].code;
    PInstr c1 = pi(Op::kConst, 1);
    c1.imm = int_bits(3);
    PInstr c2 = pi(Op::kConst, 2);
    c2.imm = int_bits(4);
    t0.push_back(c1);
    t0.push_back(c2);
    t0.push_back(pi(Op::kAdd, 3, 1, 2));
    t0.push_back(pi(Op::kSend, -1, 3));
    t0.push_back(pi(Op::kHalt, -1));

    // Destination tile: r4 = recv(); r5 = r4 + r4; halt.
    auto &td = cp.tiles[dest_tile].code;
    td.push_back(pi(Op::kRecv, 4));
    td.push_back(pi(Op::kAdd, 5, 4, 4));
    td.push_back(pi(Op::kHalt, -1));

    // Switch programs along the route.
    for (int t = 0; t < m.n_tiles; t++) {
        auto &sw = cp.switches[t].code;
        if (t <= dest_tile) {
            SInstr route;
            route.k = SInstr::K::kRoute;
            RoutePair rp;
            rp.in = t == 0 ? Dir::kProc : Dir::kWest;
            rp.out_mask = static_cast<uint8_t>(
                1u << static_cast<int>(t == dest_tile ? Dir::kProc
                                                      : Dir::kEast));
            route.routes.push_back(rp);
            sw.push_back(route);
        }
        SInstr h;
        h.k = SInstr::K::kHalt;
        sw.push_back(h);
    }
    return cp;
}

int64_t
run_cycles(const CompiledProgram &cp)
{
    Simulator sim(cp);
    return sim.run().cycles;
}

} // namespace

int
main()
{
    // Neighbor message: the paper's four-cycle diagram.
    MachineConfig m2 = MachineConfig::base(2);
    int64_t neighbor = run_cycles(figure4_program(m2, 1));
    // The receive issues at cycle 3 (0-based) and the machine also
    // retires the consumer add and halts, so subtract the trailing
    // compute+halt cycles measured on a send-less control program.
    std::printf("Figure 4: single-word message between neighbors\n");
    std::printf("  total cycles (consts,add,send..recv,use,halt): %lld\n",
                static_cast<long long>(neighbor));
    // Timeline: cycles 0-1 constants, 2 add, 3 send, 4 route on the
    // source switch, 5 route on the destination switch, 6 receive,
    // 7 consumer add, 8 halt => the message occupies cycles 3..6.
    std::printf("  end-to-end message latency: %lld cycles (paper: "
                "4)\n",
                static_cast<long long>(neighbor - 5));

    // Per-hop scaling on a 1x8 mesh.
    MachineConfig m8;
    m8.n_tiles = 8;
    m8.rows = 1;
    m8.cols = 8;
    std::printf("  distance sweep (1x8 mesh):\n");
    int64_t prev = 0;
    bool hop_ok = true;
    for (int d = 1; d < 8; d++) {
        int64_t c = run_cycles(figure4_program(m8, d));
        std::printf("    %d hop(s): %lld cycles%s\n", d,
                    static_cast<long long>(c),
                    d > 1 && c - prev != 1 ? "  (unexpected step)"
                                           : "");
        if (d > 1 && c - prev != 1)
            hop_ok = false;
        prev = c;
    }
    std::printf("  one extra cycle per hop: %s\n",
                hop_ok ? "yes" : "NO");
    std::printf("  (paper: 4 cycles end-to-end for one hop, of which "
                "2 are effective overhead)\n");
    return hop_ok ? 0 : 1;
}
