/**
 * @file
 * Table 1 reproduction: latency of common operations on the Raw
 * prototype.  For each opcode class we build a two-instruction
 * dependent chain, run it on a one-tile machine, and derive the
 * producer's latency from the cycle count difference against an
 * empty program — validating that the simulator implements exactly
 * the table the compiler's cost model uses.
 */

#include <cstdio>
#include <string>
#include <vector>

#include <benchmark/benchmark.h>

#include "ir/builder.hpp"
#include "rawcc/compiler.hpp"
#include "sim/simulator.hpp"

namespace {

/** Cycles to execute a chain of @p n dependent ops of kind @p op. */
int64_t
chain_cycles(raw::Op op, int n)
{
    using namespace raw;
    Function fn;
    int entry = fn.new_block("entry");
    IRBuilder b(fn);
    b.set_block(entry);
    bool is_float = op_fu(op) == FuOp::kFpAdd ||
                    op_fu(op) == FuOp::kFpMul ||
                    op_fu(op) == FuOp::kFpDiv;
    // Seed through memory so the chain is opaque to constant folding.
    Type ty = is_float ? Type::kF32 : Type::kI32;
    int a = fn.new_array("seed", ty, {1});
    ValueId init = is_float ? b.const_float(1.25f) : b.const_int(17);
    ValueId zero = b.const_int(0);
    b.store(a, zero, init);
    ValueId x = b.load(a, zero);
    for (int i = 0; i < n; i++)
        x = b.emit(op, ty, x, x);
    b.print(x);
    b.halt();

    CompilerOptions opts;
    CompileOutput out =
        compile_function(std::move(fn), MachineConfig::base(1), opts);
    Simulator sim(out.program);
    return sim.run().cycles;
}

int
measured_latency(raw::Op op)
{
    // Slope of cycles over chain length isolates the op latency from
    // fixed program overhead.
    int64_t c8 = chain_cycles(op, 8);
    int64_t c24 = chain_cycles(op, 24);
    return static_cast<int>((c24 - c8) / 16);
}

struct Row
{
    const char *name;
    raw::Op op;
    int paper;
};

const Row kRows[] = {
    {"ADD", raw::Op::kAdd, 1},   {"SUB", raw::Op::kSub, 1},
    {"MUL", raw::Op::kMul, 12},  {"DIV", raw::Op::kDiv, 35},
    {"ADDF", raw::Op::kFAdd, 2}, {"SUBF", raw::Op::kFSub, 2},
    {"MULF", raw::Op::kFMul, 4}, {"DIVF", raw::Op::kFDiv, 12},
};

} // namespace

int
main(int argc, char **argv)
{
    std::printf("Table 1: Latency of common operations\n");
    std::printf("%-6s  %-10s  %-10s\n", "Op", "Measured", "Paper");
    bool all_ok = true;
    for (const Row &r : kRows) {
        int got = measured_latency(r.op);
        std::printf("%-6s  %-10d  %-10d%s\n", r.name, got, r.paper,
                    got == r.paper ? "" : "   MISMATCH");
        all_ok = all_ok && got == r.paper;
    }
    std::printf("%s\n", all_ok ? "All latencies match Table 1."
                               : "LATENCY MISMATCH DETECTED");
    (void)argc;
    (void)argv;
    return all_ok ? 0 : 1;
}
