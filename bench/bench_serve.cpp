/**
 * @file
 * Closed-loop load generator for `rawcc serve`, exercising the
 * daemon's three robustness contracts end to end and writing
 * BENCH_serve.json (override with --json-out):
 *
 *  - warm:     a repeat-heavy client mix (few distinct workloads,
 *              many requests) must show a high cache hit rate and
 *              exactly one compile per distinct digest
 *              (single-flight);
 *  - overload: ~4x more concurrent stall work than the daemon's
 *              queue+workers can hold must shed the excess with
 *              structured `overloaded` replies while the p99 latency
 *              of *accepted* requests stays bounded by the queue
 *              depth, not by the offered load;
 *  - drain:    SIGTERM in the middle of the load must produce a
 *              clean exit 0 with every admitted request answered
 *              (completed, timeout, or cancelled — never silence).
 *
 * Each scenario forks its own daemon (fresh counters), drives it
 * with real sockets through serve::ServeClient, and asserts its
 * contract, so the --smoke run doubles as a correctness gate (ctest
 * label serve-smoke).
 *
 * Flags: --smoke shrinks the load for CI; --bin PATH overrides the
 * rawcc binary (default: the RAWCC_BIN this bench was built
 * against); --clients N / --requests N scale the full run.
 */

#include <signal.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "harness/cli.hpp"
#include "serve/client.hpp"
#include "serve/json.hpp"
#include "support/error.hpp"

#ifndef RAWCC_BIN
#define RAWCC_BIN "rawcc"
#endif

namespace {

using raw::serve::Json;
using raw::serve::JsonBuilder;
using raw::serve::ServeClient;
using raw::serve::ServeDaemon;
using Clock = std::chrono::steady_clock;

/** Outcomes of one scenario, aggregated across client threads. */
struct LoadResult
{
    std::mutex mu;
    std::vector<double> ok_ms;   ///< latency of accepted+completed
    int64_t sent = 0;
    int64_t ok = 0;
    int64_t shed = 0;
    int64_t timeouts = 0;
    int64_t cancelled = 0;
    int64_t errors = 0;      ///< compile/sim/bad_request/internal
    int64_t eof = 0;         ///< connection closed before a reply
    int64_t silent = 0;      ///< reply wait expired (contract breach)

    void
    record(const char *kind, double ms)
    {
        std::lock_guard<std::mutex> lock(mu);
        if (std::strcmp(kind, "ok") == 0) {
            ok++;
            ok_ms.push_back(ms);
        } else if (std::strcmp(kind, "overloaded") == 0)
            shed++;
        else if (std::strcmp(kind, "timeout") == 0)
            timeouts++;
        else if (std::strcmp(kind, "shutting_down") == 0)
            cancelled++;
        else if (std::strcmp(kind, "eof") == 0)
            eof++;
        else if (std::strcmp(kind, "silent") == 0)
            silent++;
        else
            errors++;
    }
};

double
percentile(std::vector<double> v, double p)
{
    if (v.empty())
        return 0.0;
    std::sort(v.begin(), v.end());
    size_t idx = static_cast<size_t>(p * (v.size() - 1) + 0.5);
    return v[std::min(idx, v.size() - 1)];
}

/**
 * Fire @p n requests from one client over one connection, recording
 * each reply's taxonomy kind and latency.  @p make_line produces the
 * k-th request body.
 */
void
client_loop(const std::string &endpoint, int n,
            const std::function<std::string(int)> &make_line,
            LoadResult &out)
{
    ServeClient c;
    try {
        c.connect(endpoint);
    } catch (const raw::FatalError &) {
        std::lock_guard<std::mutex> lock(out.mu);
        out.eof += n;
        return;
    }
    for (int k = 0; k < n; k++) {
        Clock::time_point t0 = Clock::now();
        {
            std::lock_guard<std::mutex> lock(out.mu);
            out.sent++;
        }
        Json reply;
        try {
            reply = c.request(make_line(k), 20000);
        } catch (const raw::FatalError &e) {
            bool silent =
                std::strstr(e.what(), "timed out") != nullptr;
            out.record(silent ? "silent" : "eof", 0.0);
            if (!silent)
                return; // connection gone (drain); stop this client
            continue;
        }
        double ms = std::chrono::duration<double, std::milli>(
                        Clock::now() - t0)
                        .count();
        if (reply.bool_or("ok", false))
            out.record("ok", ms);
        else
            out.record(reply.str_or("error", "internal").c_str(),
                       ms);
    }
}

/** Launch @p clients threads of @p per_client requests and join. */
void
run_load(const std::string &endpoint, int clients, int per_client,
         const std::function<std::string(int, int)> &make_line,
         LoadResult &out)
{
    std::vector<std::thread> ts;
    ts.reserve(static_cast<size_t>(clients));
    for (int cl = 0; cl < clients; cl++)
        ts.emplace_back([&, cl] {
            client_loop(
                endpoint, per_client,
                [&, cl](int k) { return make_line(cl, k); }, out);
        });
    for (auto &t : ts)
        t.join();
}

/** Final daemon-side counters, fetched over the protocol. */
Json
fetch_stats(const std::string &endpoint)
{
    ServeClient c;
    c.connect(endpoint);
    return c.request("{\"op\":\"stats\"}", 10000);
}

int failures = 0;

void
expect(bool cond, const std::string &what)
{
    if (cond) {
        std::printf("  ok: %s\n", what.c_str());
    } else {
        std::printf("  FAIL: %s\n", what.c_str());
        failures++;
    }
}

std::string
scenario_json(const char *name, const LoadResult &r, double secs,
              const Json *daemon_stats)
{
    JsonBuilder b;
    b.kv("scenario", name)
        .kv("sent", r.sent)
        .kv("ok", r.ok)
        .kv("shed", r.shed)
        .kv("timeouts", r.timeouts)
        .kv("cancelled", r.cancelled)
        .kv("errors", r.errors)
        .kv("eof", r.eof)
        .kv("silent", r.silent)
        .kv("p50_ms", percentile(r.ok_ms, 0.50))
        .kv("p99_ms", percentile(r.ok_ms, 0.99))
        .kv("throughput_rps",
            secs > 0 ? static_cast<double>(r.ok) / secs : 0.0)
        .kv("wall_s", secs);
    if (daemon_stats) {
        const Json *cache = daemon_stats->find("cache");
        if (cache && cache->is_object()) {
            JsonBuilder c;
            c.kv("hits", cache->int_or("hits", 0))
                .kv("misses", cache->int_or("misses", 0))
                .kv("compiles", cache->int_or("compiles", 0))
                .kv("waits", cache->int_or("waits", 0))
                .kv("leader_failures",
                    cache->int_or("leader_failures", 0))
                .kv("retries", cache->int_or("retries", 0))
                .kv("evictions", cache->int_or("evictions", 0));
            b.raw("cache", c.str());
        }
        b.kv("daemon_shed", daemon_stats->int_or("shed", 0))
            .kv("daemon_admitted",
                daemon_stats->int_or("admitted", 0))
            .kv("daemon_cancelled",
                daemon_stats->int_or("cancelled", 0));
    }
    return b.str();
}

} // namespace

int
main(int argc, char **argv)
{
    std::string bin = RAWCC_BIN;
    std::string json_out = "BENCH_serve.json";
    bool smoke = false;
    int clients = 8;
    int requests = 40;
    for (int i = 1; i < argc; i++) {
        if (std::strcmp(argv[i], "--json-out") == 0 && i + 1 < argc)
            json_out = argv[++i];
        else if (std::strcmp(argv[i], "--bin") == 0 && i + 1 < argc)
            bin = argv[++i];
        else if (std::strcmp(argv[i], "--clients") == 0 &&
                 i + 1 < argc)
            clients = static_cast<int>(raw::cli::parse_long_in(
                "bench_serve", argv[++i], "--clients", 1, 256,
                "a count in [1, 256]"));
        else if (std::strcmp(argv[i], "--requests") == 0 &&
                 i + 1 < argc)
            requests = static_cast<int>(raw::cli::parse_long_in(
                "bench_serve", argv[++i], "--requests", 1, 100000,
                "a count in [1, 100000]"));
        else if (std::strcmp(argv[i], "--smoke") == 0)
            smoke = true;
        else {
            std::fprintf(stderr, "unknown flag %s\n", argv[i]);
            return 2;
        }
    }
    if (smoke) {
        clients = 4;
        requests = 12;
    }

    std::string sock_base =
        "/tmp/rawcc-bench-" + std::to_string(::getpid());
    std::vector<std::string> scenario_lines;

    // ---------------------------------------------------------
    // Scenario 1: warm, repeat-heavy mix.  Three distinct
    // workloads shared by all clients; everything after the first
    // compile of each must be a hit or a single-flight wait.
    // ---------------------------------------------------------
    {
        std::printf("scenario: warm (repeat-heavy, %d clients x %d "
                    "requests)\n",
                    clients, requests);
        ServeDaemon d;
        d.start(bin, {"--socket", sock_base + "-warm.sock",
                      "--workers", "2", "--queue-depth", "32"});
        static const char *kMix[] = {
            "{\"op\":\"compile\",\"bench\":\"jacobi\",\"tiles\":4}",
            "{\"op\":\"compile\",\"bench\":\"life\",\"tiles\":4}",
            "{\"op\":\"simulate\",\"bench\":\"jacobi\",\"tiles\":4}",
        };
        LoadResult r;
        Clock::time_point t0 = Clock::now();
        run_load(
            d.endpoint(), clients, requests,
            [&](int cl, int k) { return kMix[(cl + k) % 3]; }, r);
        double secs = std::chrono::duration<double>(Clock::now() -
                                                    t0)
                          .count();
        Json st = fetch_stats(d.endpoint());
        const Json *cache = st.find("cache");
        int64_t compiles =
            cache ? cache->int_or("compiles", 0) : -1;
        int64_t hits = cache ? cache->int_or("hits", 0) : 0;
        int64_t waits = cache ? cache->int_or("waits", 0) : 0;
        int64_t lookups = hits + waits +
                          (cache ? cache->int_or("misses", 0) : 0);
        double hit_rate =
            lookups > 0
                ? static_cast<double>(hits + waits) / lookups
                : 0.0;
        expect(r.ok == r.sent,
               "all " + std::to_string(r.sent) + " replies ok");
        // Two distinct digests (jacobi and life at 4 tiles; the
        // simulate shares jacobi's compile) -> exactly 2 compiles.
        expect(compiles == 2,
               "exactly one compile per distinct digest (got " +
                   std::to_string(compiles) + ", want 2)");
        expect(hit_rate > 0.80,
               "warm hit rate > 80% (got " +
                   std::to_string(hit_rate * 100) + "%)");
        expect(r.silent == 0, "no silent drops");
        expect(d.stop() == 0, "clean daemon exit");
        std::string line = scenario_json("warm", r, secs, &st);
        scenario_lines.push_back(line.substr(0, line.size() - 1) +
                                 ",\"hit_rate\":" +
                                 std::to_string(hit_rate) + "}");
    }

    // ---------------------------------------------------------
    // Scenario 2: overload.  Capacity is workers=2 + queue=4; we
    // offer ~4x that concurrently with 50ms stalls.  The daemon
    // must shed with structured replies, and accepted-request p99
    // must be bounded by queue depth x stall, not offered load.
    // ---------------------------------------------------------
    {
        int oclients = std::max(8, clients);
        int oreq = smoke ? 6 : 20;
        std::printf("scenario: overload (%d clients x %d stalls "
                    "into workers=2 queue=4)\n",
                    oclients, oreq);
        ServeDaemon d;
        d.start(bin, {"--socket", sock_base + "-over.sock",
                      "--workers", "2", "--queue-depth", "4"});
        LoadResult r;
        Clock::time_point t0 = Clock::now();
        run_load(d.endpoint(), oclients, oreq,
                 [&](int, int) {
                     return std::string(
                         "{\"op\":\"stall\",\"ms\":50}");
                 },
                 r);
        double secs = std::chrono::duration<double>(Clock::now() -
                                                    t0)
                          .count();
        Json st = fetch_stats(d.endpoint());
        expect(r.shed > 0, "excess load shed with structured "
                           "overloaded replies (" +
                               std::to_string(r.shed) + " shed)");
        expect(r.ok > 0, "accepted requests completed (" +
                             std::to_string(r.ok) + ")");
        expect(r.silent == 0, "no silent drops under overload");
        // 6 in-system slots x 50ms each = 300ms worst-case wait for
        // an admitted stall; 2s is an order of magnitude of slack
        // for CI noise, while an unbounded queue would blow past it.
        double p99 = percentile(r.ok_ms, 0.99);
        expect(p99 < 2000.0,
               "p99 of accepted bounded by queue, not load (" +
                   std::to_string(p99) + " ms)");
        expect(r.ok + r.shed + r.timeouts + r.errors +
                       r.cancelled ==
                   r.sent,
               "every request got exactly one reply");
        expect(d.stop() == 0, "clean daemon exit");
        scenario_lines.push_back(
            scenario_json("overload", r, secs, &st));
    }

    // ---------------------------------------------------------
    // Scenario 3: drain.  SIGTERM mid-load; every admitted request
    // must still be answered (ok / timeout / shutting_down), the
    // daemon must exit 0 within its drain budget.
    // ---------------------------------------------------------
    {
        std::printf("scenario: drain (SIGTERM under load)\n");
        ServeDaemon d;
        d.start(bin, {"--socket", sock_base + "-drain.sock",
                      "--workers", "2", "--queue-depth", "8",
                      "--drain", "4000"});
        LoadResult r;
        Clock::time_point t0 = Clock::now();
        std::thread killer([&] {
            std::this_thread::sleep_for(
                std::chrono::milliseconds(150));
            d.kill_with(SIGTERM);
        });
        run_load(d.endpoint(), clients, requests,
                 [&](int, int) {
                     return std::string(
                         "{\"op\":\"stall\",\"ms\":20}");
                 },
                 r);
        killer.join();
        double secs = std::chrono::duration<double>(Clock::now() -
                                                    t0)
                          .count();
        int code = d.stop();
        expect(code == 0, "daemon exited 0 after SIGTERM (got " +
                              std::to_string(code) + ")");
        expect(r.silent == 0,
               "every in-flight request answered before exit");
        expect(r.ok > 0, "work before the signal completed (" +
                             std::to_string(r.ok) + ")");
        scenario_lines.push_back(
            scenario_json("drain", r, secs, nullptr));
    }

    // ---------------------------------------------------------
    // Emit BENCH_serve.json
    // ---------------------------------------------------------
    std::ofstream out(json_out);
    out << "{\n  \"bench\": \"serve\",\n  \"smoke\": "
        << (smoke ? "true" : "false") << ",\n  \"clients\": "
        << clients << ",\n  \"requests_per_client\": " << requests
        << ",\n  \"failures\": " << failures
        << ",\n  \"scenarios\": [\n";
    for (size_t i = 0; i < scenario_lines.size(); i++)
        out << "    " << scenario_lines[i]
            << (i + 1 < scenario_lines.size() ? "," : "") << "\n";
    out << "  ]\n}\n";
    out.close();
    std::printf("%s: %s written, %d failure(s)\n",
                failures ? "FAIL" : "PASS", json_out.c_str(),
                failures);
    return failures ? 1 : 0;
}
