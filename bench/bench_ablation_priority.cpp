/**
 * @file
 * Scheduler-quality ablation (Section 4.2 + the schedule-quality
 * optimizer): the full cross product of
 *
 *   priority  in {ready-FIFO, level+fertility, slack-iterated}
 *   routing   in {XY, contention-aware XY/YX}
 *   placement in {static, profile-guided (--pgo)}
 *
 * over every built-in benchmark at 16 and 32 tiles.  Prints a cycles
 * table and writes BENCH_schedquality.json with per-benchmark cycles,
 * per-configuration geomeans and the scheduler's per-block makespan
 * estimate sums (model-vs-measured diagnostics).
 *
 * --smoke runs a tiny subset (2 benchmarks, 4 tiles) and exits
 * nonzero if the all-on configuration's geomean exceeds the all-off
 * (seed) geomean — wired into ctest under the sched-quality label,
 * this pins the best-of-N "never worse" property end to end.
 *
 * Flags: --json-out FILE, --jobs N, --smoke.
 */

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <numeric>
#include <string>
#include <vector>

#include "harness/cli.hpp"
#include "harness/harness.hpp"
#include "harness/parallel.hpp"

namespace {

using namespace raw;

/** One point of the ablation cross product. */
struct SchedConfig
{
    const char *name;
    bool fifo;
    int iters;
    bool route;
    bool pgo;
};

const SchedConfig kConfigs[] = {
    {"fifo/xy", true, 0, false, false},
    {"fifo/xy+yx", true, 0, true, false},
    {"fifo/xy/pgo", true, 0, false, true},
    {"fifo/xy+yx/pgo", true, 0, true, true},
    {"prio/xy", false, 0, false, false}, // the seed configuration
    {"prio/xy+yx", false, 0, true, false},
    {"prio/xy/pgo", false, 0, false, true},
    {"prio/xy+yx/pgo", false, 0, true, true},
    {"slack/xy", false, 3, false, false},
    {"slack/xy+yx", false, 3, true, false},
    {"slack/xy/pgo", false, 3, false, true},
    {"slack/xy+yx/pgo", false, 3, true, true},
};
constexpr int kNumConfigs =
    static_cast<int>(std::size(kConfigs));

/** Index of the seed (everything off) configuration above. */
constexpr int kSeedConfig = 4;
/** Index of the everything-on configuration. */
constexpr int kFullConfig = kNumConfigs - 1;

CompilerOptions
options_of(const SchedConfig &c)
{
    CompilerOptions opts;
    opts.orch.sched.fifo_priority = c.fifo;
    opts.orch.sched.sched_iters = c.iters;
    opts.orch.sched.route_select = c.route;
    return opts;
}

/** cycles[b][s][c] and est[b][s][c] for benchmark/size/config. */
struct Measurements
{
    std::vector<std::string> benches;
    std::vector<int> sizes;
    std::vector<std::vector<std::vector<int64_t>>> cycles;
    std::vector<std::vector<std::vector<int64_t>>> est;
};

Measurements
measure(const std::vector<BenchmarkProgram> &progs,
        const std::vector<int> &sizes, int jobs)
{
    Measurements m;
    for (const BenchmarkProgram &p : progs)
        m.benches.push_back(p.name);
    m.sizes = sizes;
    const int nb = static_cast<int>(progs.size());
    const int ns = static_cast<int>(sizes.size());
    m.cycles.assign(
        nb, std::vector<std::vector<int64_t>>(
                ns, std::vector<int64_t>(kNumConfigs, 0)));
    m.est = m.cycles;

    // One job per (benchmark, size, config); each writes its own
    // slot, so the table is identical at any --jobs value.
    run_parallel(nb * ns * kNumConfigs, jobs, [&](int idx) {
        const int b = idx / (ns * kNumConfigs);
        const int s = (idx / kNumConfigs) % ns;
        const int c = idx % kNumConfigs;
        const SchedConfig &cfg = kConfigs[c];
        const BenchmarkProgram &prog = progs[b];
        MachineConfig machine = MachineConfig::base(sizes[s]);
        CompilerOptions opts = options_of(cfg);
        RunResult r =
            cfg.pgo ? run_rawcc_pgo(prog.source, machine,
                                    prog.check_array, opts)
                    : run_rawcc(prog.source, machine,
                                prog.check_array, opts);
        m.cycles[b][s][c] = r.cycles;
        m.est[b][s][c] = r.stats.estimated_makespan();
    });
    return m;
}

// ---------------------------------------------------------------
// Modulo-scheduling section (--modulo): the loop-dominated points,
// base vs pipelined cycles plus per-loop achieved II vs MII, and an
// oracle greedy-vs-optimal gap table over the small blocks.

/** Per-source-loop II summary aggregated over the loop's blocks. */
struct LoopIISummary
{
    int loop = -1;
    int blocks = 0;
    int pipelined = 0;
    int64_t ii = 0;  // worst (max) achieved steady-state II
    int64_t mii = 0; // worst (max) lower bound
};

struct ModuloPoint
{
    std::string bench;
    int tiles = 0;
    int64_t cycles_base = 0;
    int64_t cycles_modulo = 0;
    std::vector<LoopIISummary> loops;
};

struct OracleRow
{
    std::string bench;
    int tiles = 0;
    int blocks = 0;
    int proved_optimal = 0;
    int64_t greedy_total = 0;
    int64_t best_total = 0;
    int64_t max_gap = 0;
};

const char *kLoopBenches[] = {"vpenta", "tomcatv", "life"};

std::vector<ModuloPoint>
measure_modulo(const std::vector<int> &sizes, int jobs)
{
    const int nb = static_cast<int>(std::size(kLoopBenches));
    const int ns = static_cast<int>(sizes.size());
    std::vector<ModuloPoint> pts(nb * ns);
    run_parallel(nb * ns, jobs, [&](int idx) {
        const BenchmarkProgram &prog =
            benchmark(kLoopBenches[idx / ns]);
        const int tiles = sizes[idx % ns];
        MachineConfig machine = MachineConfig::base(tiles);
        ModuloPoint &pt = pts[idx];
        pt.bench = prog.name;
        pt.tiles = tiles;
        pt.cycles_base = run_rawcc(prog.source, machine,
                                   prog.check_array)
                             .cycles;
        CompilerOptions mod;
        mod.orch.sched.modulo = true;
        RunResult r =
            run_rawcc(prog.source, machine, prog.check_array, mod);
        pt.cycles_modulo = r.cycles;
        // Aggregate achieved II vs MII per source loop (worst block
        // of each loop; chunks of a split body count toward their
        // loop).  Blocks outside any for statement land on loop -1.
        std::vector<LoopIISummary> &ls = pt.loops;
        for (const BlockPipelineStats &p :
             r.stats.block_pipeline) {
            LoopIISummary *row = nullptr;
            for (LoopIISummary &l : ls)
                if (l.loop == p.src_loop)
                    row = &l;
            if (!row) {
                ls.push_back({p.src_loop, 0, 0, 0, 0});
                row = &ls.back();
            }
            row->blocks++;
            row->pipelined += p.pipelined ? 1 : 0;
            row->ii = std::max(row->ii, p.ii);
            row->mii = std::max(row->mii, p.mii);
        }
        std::sort(ls.begin(), ls.end(),
                  [](const LoopIISummary &a, const LoopIISummary &b) {
                      return a.loop < b.loop;
                  });
    });
    return pts;
}

std::vector<OracleRow>
measure_oracle(int tiles, int64_t budget, int jobs)
{
    const int nb = static_cast<int>(std::size(kLoopBenches));
    std::vector<OracleRow> rows(nb);
    run_parallel(nb, jobs, [&](int b) {
        const BenchmarkProgram &prog = benchmark(kLoopBenches[b]);
        CompilerOptions opts;
        opts.orch.sched.oracle_budget = budget;
        CompileOutput out = compile_source(
            prog.source, MachineConfig::base(tiles), opts);
        OracleRow &row = rows[b];
        row.bench = prog.name;
        row.tiles = tiles;
        for (const OracleReport &r : out.stats.oracle_reports) {
            row.blocks++;
            row.proved_optimal += r.proved_optimal ? 1 : 0;
            row.greedy_total += r.greedy_makespan;
            row.best_total += r.best_makespan;
            row.max_gap = std::max(
                row.max_gap, r.greedy_makespan - r.best_makespan);
        }
    });
    return rows;
}

double
modulo_geomean(const std::vector<ModuloPoint> &pts, int tiles,
               bool modulo)
{
    double log_sum = 0;
    int n = 0;
    for (const ModuloPoint &p : pts) {
        if (p.tiles != tiles)
            continue;
        int64_t c = modulo ? p.cycles_modulo : p.cycles_base;
        log_sum += std::log(
            static_cast<double>(std::max<int64_t>(1, c)));
        n++;
    }
    return n ? std::exp(log_sum / n) : 0.0;
}

void
print_modulo(const std::vector<ModuloPoint> &pts,
             const std::vector<OracleRow> &oracle,
             const std::vector<int> &sizes)
{
    std::printf("\n== modulo scheduling (--modulo): loop-dominated "
                "points ==\n");
    std::printf("%-14s %6s %12s %12s %8s\n", "Benchmark", "tiles",
                "base", "modulo", "delta");
    for (const ModuloPoint &p : pts)
        std::printf("%-14s %6d %12lld %12lld %+7.2f%%\n",
                    p.bench.c_str(), p.tiles,
                    static_cast<long long>(p.cycles_base),
                    static_cast<long long>(p.cycles_modulo),
                    100.0 *
                        static_cast<double>(p.cycles_modulo -
                                            p.cycles_base) /
                        static_cast<double>(
                            std::max<int64_t>(1, p.cycles_base)));
    for (int t : sizes) {
        double base = modulo_geomean(pts, t, false);
        double mod = modulo_geomean(pts, t, true);
        std::printf("%d tiles: geomean base %.1f -> modulo %.1f "
                    "(%+.2f%%)\n",
                    t, base, mod, 100.0 * (mod - base) / base);
    }
    std::printf("\n== oracle greedy-vs-optimal gap "
                "(--oracle-budget) ==\n");
    std::printf("%-14s %6s %7s %8s %8s %8s %8s\n", "Benchmark",
                "tiles", "blocks", "optimal", "greedy", "best",
                "max gap");
    for (const OracleRow &r : oracle)
        std::printf("%-14s %6d %7d %8d %8lld %8lld %8lld\n",
                    r.bench.c_str(), r.tiles, r.blocks,
                    r.proved_optimal,
                    static_cast<long long>(r.greedy_total),
                    static_cast<long long>(r.best_total),
                    static_cast<long long>(r.max_gap));
}

double
geomean(const Measurements &m, int s, int c)
{
    // Clamp each term to >= 1 cycle and guard the empty set so a
    // degenerate run can never write inf/nan into the JSON.
    if (m.benches.empty())
        return 0.0;
    double log_sum = 0;
    for (size_t b = 0; b < m.benches.size(); b++)
        log_sum += std::log(static_cast<double>(
            std::max<int64_t>(1, m.cycles[b][s][c])));
    return std::exp(log_sum /
                    static_cast<double>(m.benches.size()));
}

void
print_table(const Measurements &m)
{
    for (size_t s = 0; s < m.sizes.size(); s++) {
        std::printf("\n== %d tiles: simulated cycles ==\n",
                    m.sizes[s]);
        std::printf("%-14s", "Benchmark");
        for (const SchedConfig &c : kConfigs)
            std::printf(" %15s", c.name);
        std::printf("\n");
        for (size_t b = 0; b < m.benches.size(); b++) {
            std::printf("%-14s", m.benches[b].c_str());
            for (int c = 0; c < kNumConfigs; c++)
                std::printf(" %15lld",
                            static_cast<long long>(
                                m.cycles[b][s][c]));
            std::printf("\n");
        }
        std::printf("%-14s", "geomean");
        for (int c = 0; c < kNumConfigs; c++)
            std::printf(" %15.0f", geomean(m, s, c));
        std::printf("\n");
    }
}

void
write_json(const std::string &path, const Measurements &m,
           const std::vector<ModuloPoint> &mod,
           const std::vector<OracleRow> &oracle,
           int64_t oracle_budget)
{
    std::ofstream out(path);
    if (!out) {
        std::fprintf(stderr, "cannot open %s for writing\n",
                     path.c_str());
        std::exit(1);
    }
    out << "{\n  \"table\": \"schedquality_ablation\",\n";
    out << "  \"configs\": [";
    for (int c = 0; c < kNumConfigs; c++)
        out << (c ? ", " : "") << "\"" << kConfigs[c].name << "\"";
    out << "],\n  \"seed_config\": \"" << kConfigs[kSeedConfig].name
        << "\",\n  \"sizes\": [";
    for (size_t s = 0; s < m.sizes.size(); s++)
        out << (s ? ", " : "") << m.sizes[s];
    out << "],\n  \"benchmarks\": [\n";
    for (size_t b = 0; b < m.benches.size(); b++) {
        out << "    {\"name\": \"" << m.benches[b] << "\",\n"
            << "     \"results\": [\n";
        for (size_t s = 0; s < m.sizes.size(); s++) {
            out << "       {\"tiles\": " << m.sizes[s]
                << ", \"cycles\": [";
            for (int c = 0; c < kNumConfigs; c++)
                out << (c ? ", " : "") << m.cycles[b][s][c];
            out << "], \"est_makespan\": [";
            for (int c = 0; c < kNumConfigs; c++)
                out << (c ? ", " : "") << m.est[b][s][c];
            out << "]}"
                << (s + 1 < m.sizes.size() ? "," : "") << "\n";
        }
        out << "     ]}"
            << (b + 1 < m.benches.size() ? "," : "") << "\n";
    }
    out << "  ],\n  \"geomean\": [\n";
    for (size_t s = 0; s < m.sizes.size(); s++) {
        out << "    {\"tiles\": " << m.sizes[s] << ", \"cycles\": [";
        for (int c = 0; c < kNumConfigs; c++) {
            char buf[32];
            std::snprintf(buf, sizeof(buf), "%.1f",
                          geomean(m, s, c));
            out << (c ? ", " : "") << buf;
        }
        out << "]}" << (s + 1 < m.sizes.size() ? "," : "") << "\n";
    }
    out << "  ],\n";

    // Modulo-scheduling section: loop-dominated points, base vs
    // pipelined cycles and per-loop achieved II vs MII.
    out << "  \"modulo\": {\n    \"benchmarks\": [\n";
    for (size_t i = 0; i < mod.size(); i++) {
        const ModuloPoint &p = mod[i];
        out << "      {\"name\": \"" << p.bench
            << "\", \"tiles\": " << p.tiles
            << ", \"cycles_base\": " << p.cycles_base
            << ", \"cycles_modulo\": " << p.cycles_modulo
            << ",\n       \"loops\": [";
        for (size_t l = 0; l < p.loops.size(); l++) {
            const LoopIISummary &ls = p.loops[l];
            out << (l ? ", " : "") << "{\"loop\": " << ls.loop
                << ", \"blocks\": " << ls.blocks
                << ", \"pipelined\": " << ls.pipelined
                << ", \"ii\": " << ls.ii << ", \"mii\": " << ls.mii
                << "}";
        }
        out << "]}" << (i + 1 < mod.size() ? "," : "") << "\n";
    }
    out << "    ],\n    \"geomean\": [\n";
    std::vector<int> tiles_seen;
    for (const ModuloPoint &p : mod)
        if (std::find(tiles_seen.begin(), tiles_seen.end(),
                      p.tiles) == tiles_seen.end())
            tiles_seen.push_back(p.tiles);
    for (size_t s = 0; s < tiles_seen.size(); s++) {
        double base = modulo_geomean(mod, tiles_seen[s], false);
        double pip = modulo_geomean(mod, tiles_seen[s], true);
        char b1[32], b2[32], b3[32];
        std::snprintf(b1, sizeof(b1), "%.1f", base);
        std::snprintf(b2, sizeof(b2), "%.1f", pip);
        std::snprintf(b3, sizeof(b3), "%.4f",
                      base > 0 ? 100.0 * (pip - base) / base : 0.0);
        out << "      {\"tiles\": " << tiles_seen[s]
            << ", \"base\": " << b1 << ", \"modulo\": " << b2
            << ", \"delta_pct\": " << b3 << "}"
            << (s + 1 < tiles_seen.size() ? "," : "") << "\n";
    }
    out << "    ]\n  },\n";

    // Oracle gap section: greedy-vs-optimal over small blocks.
    out << "  \"oracle\": {\n    \"budget\": " << oracle_budget
        << ",\n    \"benchmarks\": [\n";
    for (size_t i = 0; i < oracle.size(); i++) {
        const OracleRow &r = oracle[i];
        out << "      {\"name\": \"" << r.bench
            << "\", \"tiles\": " << r.tiles
            << ", \"blocks\": " << r.blocks
            << ", \"proved_optimal\": " << r.proved_optimal
            << ", \"greedy_makespan\": " << r.greedy_total
            << ", \"best_makespan\": " << r.best_total
            << ", \"max_gap\": " << r.max_gap << "}"
            << (i + 1 < oracle.size() ? "," : "") << "\n";
    }
    out << "    ]\n  }\n}\n";
    std::printf("wrote %s\n", path.c_str());
}

} // namespace

int
main(int argc, char **argv)
{
    bool smoke = false;
    std::string json_out = "BENCH_schedquality.json";
    int jobs = 0;
    for (int i = 1; i < argc; i++) {
        if (std::strcmp(argv[i], "--smoke") == 0)
            smoke = true;
        else if (std::strcmp(argv[i], "--json-out") == 0 &&
                 i + 1 < argc)
            json_out = argv[++i];
        else if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc)
            jobs = static_cast<int>(raw::cli::parse_long_in(
                "bench_ablation", argv[++i], "--jobs", 0, 1024,
                "a worker count in [0, 1024]"));
    }
    jobs = resolve_jobs(jobs);

    std::vector<BenchmarkProgram> progs;
    std::vector<int> sizes;
    if (smoke) {
        progs = {benchmark("jacobi"), benchmark("fpppp-kernel")};
        sizes = {4};
    } else {
        progs = benchmark_suite();
        sizes = {16, 32};
    }

    Measurements m = measure(progs, sizes, jobs);
    print_table(m);

    // Modulo scheduling and the oracle gap: measured on the
    // loop-dominated benchmarks, at the grid's largest size for the
    // oracle (where blocks are smallest after partitioning).
    const int64_t oracle_budget = 1000000;
    std::vector<ModuloPoint> mod = measure_modulo(sizes, jobs);
    std::vector<OracleRow> oracle =
        measure_oracle(sizes.back(), oracle_budget, jobs);
    print_modulo(mod, oracle, sizes);
    write_json(json_out, m, mod, oracle, oracle_budget);

    // The best-of-N construction means turning every mechanism on
    // must never lose cycles versus the seed configuration.
    bool ok = true;
    for (size_t s = 0; s < m.sizes.size(); s++) {
        double seed = geomean(m, static_cast<int>(s), kSeedConfig);
        double full = geomean(m, static_cast<int>(s), kFullConfig);
        std::printf("%d tiles: geomean seed %.1f -> optimized %.1f "
                    "(%+.2f%%)\n",
                    m.sizes[s], seed, full,
                    100.0 * (full - seed) / seed);
        if (full > seed) {
            std::printf("FAIL: optimized geomean exceeds seed at "
                        "%d tiles\n",
                        m.sizes[s]);
            ok = false;
        }
    }
    return ok ? 0 : 1;
}
