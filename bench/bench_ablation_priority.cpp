/**
 * @file
 * Ablation: the event scheduler's priority scheme (Section 4.2).
 * Compares the paper's weighted level+fertility priority against
 * level-only, fertility-only and ready-FIFO order.
 */

#include <cstdio>

#include "harness/harness.hpp"

namespace {

using namespace raw;

int64_t
cycles_with(const BenchmarkProgram &prog, int n, int level_w,
            int fert_w, bool fifo)
{
    CompilerOptions opts;
    opts.orch.sched.level_weight = level_w;
    opts.orch.sched.fertility_weight = fert_w;
    opts.orch.sched.fifo_priority = fifo;
    RunResult r = run_rawcc(prog.source, MachineConfig::base(n),
                            prog.check_array, opts);
    return r.cycles;
}

} // namespace

int
main()
{
    std::printf("Ablation: scheduler priority (16 tiles), cycles\n");
    std::printf("%-14s %-14s %-12s %-14s %-10s\n", "Benchmark",
                "level+fert", "level-only", "fertility-only", "FIFO");
    for (const char *name : {"fpppp-kernel", "jacobi", "mxm",
                             "tomcatv"}) {
        const BenchmarkProgram &prog = benchmark(name);
        std::printf("%-14s %-14lld %-12lld %-14lld %-10lld\n", name,
                    static_cast<long long>(
                        cycles_with(prog, 16, 16, 1, false)),
                    static_cast<long long>(
                        cycles_with(prog, 16, 16, 0, false)),
                    static_cast<long long>(
                        cycles_with(prog, 16, 0, 1, false)),
                    static_cast<long long>(
                        cycles_with(prog, 16, 16, 1, true)));
    }
    return 0;
}
