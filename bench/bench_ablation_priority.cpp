/**
 * @file
 * Scheduler-quality ablation (Section 4.2 + the schedule-quality
 * optimizer): the full cross product of
 *
 *   priority  in {ready-FIFO, level+fertility, slack-iterated}
 *   routing   in {XY, contention-aware XY/YX}
 *   placement in {static, profile-guided (--pgo)}
 *
 * over every built-in benchmark at 16 and 32 tiles.  Prints a cycles
 * table and writes BENCH_schedquality.json with per-benchmark cycles,
 * per-configuration geomeans and the scheduler's per-block makespan
 * estimate sums (model-vs-measured diagnostics).
 *
 * --smoke runs a tiny subset (2 benchmarks, 4 tiles) and exits
 * nonzero if the all-on configuration's geomean exceeds the all-off
 * (seed) geomean — wired into ctest under the sched-quality label,
 * this pins the best-of-N "never worse" property end to end.
 *
 * Flags: --json-out FILE, --jobs N, --smoke.
 */

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <numeric>
#include <string>
#include <vector>

#include "harness/cli.hpp"
#include "harness/harness.hpp"
#include "harness/parallel.hpp"

namespace {

using namespace raw;

/** One point of the ablation cross product. */
struct SchedConfig
{
    const char *name;
    bool fifo;
    int iters;
    bool route;
    bool pgo;
};

const SchedConfig kConfigs[] = {
    {"fifo/xy", true, 0, false, false},
    {"fifo/xy+yx", true, 0, true, false},
    {"fifo/xy/pgo", true, 0, false, true},
    {"fifo/xy+yx/pgo", true, 0, true, true},
    {"prio/xy", false, 0, false, false}, // the seed configuration
    {"prio/xy+yx", false, 0, true, false},
    {"prio/xy/pgo", false, 0, false, true},
    {"prio/xy+yx/pgo", false, 0, true, true},
    {"slack/xy", false, 3, false, false},
    {"slack/xy+yx", false, 3, true, false},
    {"slack/xy/pgo", false, 3, false, true},
    {"slack/xy+yx/pgo", false, 3, true, true},
};
constexpr int kNumConfigs =
    static_cast<int>(std::size(kConfigs));

/** Index of the seed (everything off) configuration above. */
constexpr int kSeedConfig = 4;
/** Index of the everything-on configuration. */
constexpr int kFullConfig = kNumConfigs - 1;

CompilerOptions
options_of(const SchedConfig &c)
{
    CompilerOptions opts;
    opts.orch.sched.fifo_priority = c.fifo;
    opts.orch.sched.sched_iters = c.iters;
    opts.orch.sched.route_select = c.route;
    return opts;
}

/** cycles[b][s][c] and est[b][s][c] for benchmark/size/config. */
struct Measurements
{
    std::vector<std::string> benches;
    std::vector<int> sizes;
    std::vector<std::vector<std::vector<int64_t>>> cycles;
    std::vector<std::vector<std::vector<int64_t>>> est;
};

Measurements
measure(const std::vector<BenchmarkProgram> &progs,
        const std::vector<int> &sizes, int jobs)
{
    Measurements m;
    for (const BenchmarkProgram &p : progs)
        m.benches.push_back(p.name);
    m.sizes = sizes;
    const int nb = static_cast<int>(progs.size());
    const int ns = static_cast<int>(sizes.size());
    m.cycles.assign(
        nb, std::vector<std::vector<int64_t>>(
                ns, std::vector<int64_t>(kNumConfigs, 0)));
    m.est = m.cycles;

    // One job per (benchmark, size, config); each writes its own
    // slot, so the table is identical at any --jobs value.
    run_parallel(nb * ns * kNumConfigs, jobs, [&](int idx) {
        const int b = idx / (ns * kNumConfigs);
        const int s = (idx / kNumConfigs) % ns;
        const int c = idx % kNumConfigs;
        const SchedConfig &cfg = kConfigs[c];
        const BenchmarkProgram &prog = progs[b];
        MachineConfig machine = MachineConfig::base(sizes[s]);
        CompilerOptions opts = options_of(cfg);
        RunResult r =
            cfg.pgo ? run_rawcc_pgo(prog.source, machine,
                                    prog.check_array, opts)
                    : run_rawcc(prog.source, machine,
                                prog.check_array, opts);
        m.cycles[b][s][c] = r.cycles;
        m.est[b][s][c] = r.stats.estimated_makespan();
    });
    return m;
}

double
geomean(const Measurements &m, int s, int c)
{
    // Clamp each term to >= 1 cycle and guard the empty set so a
    // degenerate run can never write inf/nan into the JSON.
    if (m.benches.empty())
        return 0.0;
    double log_sum = 0;
    for (size_t b = 0; b < m.benches.size(); b++)
        log_sum += std::log(static_cast<double>(
            std::max<int64_t>(1, m.cycles[b][s][c])));
    return std::exp(log_sum /
                    static_cast<double>(m.benches.size()));
}

void
print_table(const Measurements &m)
{
    for (size_t s = 0; s < m.sizes.size(); s++) {
        std::printf("\n== %d tiles: simulated cycles ==\n",
                    m.sizes[s]);
        std::printf("%-14s", "Benchmark");
        for (const SchedConfig &c : kConfigs)
            std::printf(" %15s", c.name);
        std::printf("\n");
        for (size_t b = 0; b < m.benches.size(); b++) {
            std::printf("%-14s", m.benches[b].c_str());
            for (int c = 0; c < kNumConfigs; c++)
                std::printf(" %15lld",
                            static_cast<long long>(
                                m.cycles[b][s][c]));
            std::printf("\n");
        }
        std::printf("%-14s", "geomean");
        for (int c = 0; c < kNumConfigs; c++)
            std::printf(" %15.0f", geomean(m, s, c));
        std::printf("\n");
    }
}

void
write_json(const std::string &path, const Measurements &m)
{
    std::ofstream out(path);
    if (!out) {
        std::fprintf(stderr, "cannot open %s for writing\n",
                     path.c_str());
        std::exit(1);
    }
    out << "{\n  \"table\": \"schedquality_ablation\",\n";
    out << "  \"configs\": [";
    for (int c = 0; c < kNumConfigs; c++)
        out << (c ? ", " : "") << "\"" << kConfigs[c].name << "\"";
    out << "],\n  \"seed_config\": \"" << kConfigs[kSeedConfig].name
        << "\",\n  \"sizes\": [";
    for (size_t s = 0; s < m.sizes.size(); s++)
        out << (s ? ", " : "") << m.sizes[s];
    out << "],\n  \"benchmarks\": [\n";
    for (size_t b = 0; b < m.benches.size(); b++) {
        out << "    {\"name\": \"" << m.benches[b] << "\",\n"
            << "     \"results\": [\n";
        for (size_t s = 0; s < m.sizes.size(); s++) {
            out << "       {\"tiles\": " << m.sizes[s]
                << ", \"cycles\": [";
            for (int c = 0; c < kNumConfigs; c++)
                out << (c ? ", " : "") << m.cycles[b][s][c];
            out << "], \"est_makespan\": [";
            for (int c = 0; c < kNumConfigs; c++)
                out << (c ? ", " : "") << m.est[b][s][c];
            out << "]}"
                << (s + 1 < m.sizes.size() ? "," : "") << "\n";
        }
        out << "     ]}"
            << (b + 1 < m.benches.size() ? "," : "") << "\n";
    }
    out << "  ],\n  \"geomean\": [\n";
    for (size_t s = 0; s < m.sizes.size(); s++) {
        out << "    {\"tiles\": " << m.sizes[s] << ", \"cycles\": [";
        for (int c = 0; c < kNumConfigs; c++) {
            char buf[32];
            std::snprintf(buf, sizeof(buf), "%.1f",
                          geomean(m, s, c));
            out << (c ? ", " : "") << buf;
        }
        out << "]}" << (s + 1 < m.sizes.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
    std::printf("wrote %s\n", path.c_str());
}

} // namespace

int
main(int argc, char **argv)
{
    bool smoke = false;
    std::string json_out = "BENCH_schedquality.json";
    int jobs = 0;
    for (int i = 1; i < argc; i++) {
        if (std::strcmp(argv[i], "--smoke") == 0)
            smoke = true;
        else if (std::strcmp(argv[i], "--json-out") == 0 &&
                 i + 1 < argc)
            json_out = argv[++i];
        else if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc)
            jobs = static_cast<int>(raw::cli::parse_long_in(
                "bench_ablation", argv[++i], "--jobs", 0, 1024,
                "a worker count in [0, 1024]"));
    }
    jobs = resolve_jobs(jobs);

    std::vector<BenchmarkProgram> progs;
    std::vector<int> sizes;
    if (smoke) {
        progs = {benchmark("jacobi"), benchmark("fpppp-kernel")};
        sizes = {4};
    } else {
        progs = benchmark_suite();
        sizes = {16, 32};
    }

    Measurements m = measure(progs, sizes, jobs);
    print_table(m);
    write_json(json_out, m);

    // The best-of-N construction means turning every mechanism on
    // must never lose cycles versus the seed configuration.
    bool ok = true;
    for (size_t s = 0; s < m.sizes.size(); s++) {
        double seed = geomean(m, static_cast<int>(s), kSeedConfig);
        double full = geomean(m, static_cast<int>(s), kFullConfig);
        std::printf("%d tiles: geomean seed %.1f -> optimized %.1f "
                    "(%+.2f%%)\n",
                    m.sizes[s], seed, full,
                    100.0 * (full - seed) / seed);
        if (full > seed) {
            std::printf("FAIL: optimized geomean exceeds seed at "
                        "%d tiles\n",
                        m.sizes[s]);
            ok = false;
        }
    }
    return ok ? 0 : 1;
}
