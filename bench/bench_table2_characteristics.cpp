/**
 * @file
 * Table 2 reproduction: benchmark characteristics — source, language,
 * lines of code, array size, sequential run time (cycles under the
 * baseline compiler on one tile).
 *
 * Our programs are rawc rewrites of the originals, with iteration
 * counts scaled for simulation (EXPERIMENTS.md documents the paper's
 * values side by side).
 */

#include <cstdio>
#include <sstream>

#include "harness/harness.hpp"

namespace {

int
count_lines(const std::string &src)
{
    int n = 0;
    std::istringstream is(src);
    std::string line;
    while (std::getline(is, line)) {
        // Count non-empty, non-comment lines, as a compiler writer
        // would count kernel size.
        size_t k = line.find_first_not_of(" \t");
        if (k == std::string::npos)
            continue;
        if (line[k] == '/' && k + 1 < line.size() && line[k + 1] == '/')
            continue;
        n++;
    }
    return n;
}

const char *
array_size(const std::string &name)
{
    if (name == "life" || name == "jacobi" || name == "tomcatv")
        return "32x32";
    if (name == "vpenta")
        return "32x32 (x5)";
    if (name == "cholesky")
        return "3x15x16";
    if (name == "mxm")
        return "32x64, 64x8";
    return "-";
}

} // namespace

int
main()
{
    std::printf("Table 2: Benchmark characteristics\n");
    std::printf("%-14s %-8s %-12s %-12s %-22s\n", "Benchmark", "Lines",
                "Array size", "Seq. RT", "Description");
    for (const raw::BenchmarkProgram &p : raw::benchmark_suite()) {
        raw::RunResult base =
            raw::run_baseline(p.source, p.check_array);
        std::printf("%-14s %-8d %-12s %-12lld %-22s\n",
                    p.name.c_str(), count_lines(p.source),
                    array_size(p.name),
                    static_cast<long long>(base.cycles),
                    p.description.c_str());
    }
    std::printf("\nPaper values (Table 2): life 118 lines / 1.08M, "
                "vpenta 157 / 2.56M, cholesky 126 / 1.79M,\n"
                "tomcatv 254 / 214M, fpppp-kernel 735 / 8.98K, "
                "mxm 64 / 5.98M, jacobi 59 / 0.17M.\n"
                "Iteration counts here are scaled for simulation; see "
                "EXPERIMENTS.md.\n");
    return 0;
}
