/**
 * @file
 * Wall-clock tracker for the toolchain itself: how fast do we
 * compile and simulate the Table 3 sweep?  Writes BENCH_wallclock.json
 * (override with --json-out) with simulated cycles per host second,
 * compile milliseconds per phase, and placement swaps per second —
 * the perf trajectory of the infrastructure, as opposed to
 * BENCH_table3.json which tracks the *simulated* machine.
 *
 * Flags: --jobs N fans the (benchmark × size) runs over N worker
 * threads (0 = one per core; the PGO sweep, whose points run
 * sequentially, instead fans each compile's per-block phases over
 * N); --tiny runs a single small config so CI can
 * smoke-test the harness in well under a second (ctest label
 * perf-smoke); --pgo-sweep adds the compile-throughput scenario (a
 * PGO portfolio over compile-heavy points, timed with the schedule
 * cache off / cold / warm — the "pgo_sweep" JSON section records the
 * warm speedup); --scaling adds the large-mesh scenario (the full
 * suite at 16/32/64/128 tiles, each point simulated under the
 * reference, threaded and region cores with a cycle-equality assert
 * — the "scaling" JSON section records per-mesh cycles/s for all
 * three cores plus per-run speedup over the same benchmark's 1-tile
 * cycles; always run serially for honest per-core timings);
 * --json-out PATH overrides the output path.
 *
 * Results (cycle counts, prints) are bit-identical at any --jobs
 * value and any cache state; only the wall-clock figures vary
 * between hosts and runs.
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "harness/cli.hpp"
#include "harness/harness.hpp"
#include "harness/parallel.hpp"
#include "rawcc/schedcache.hpp"

namespace {

using Clock = std::chrono::steady_clock;

double
ms_since(Clock::time_point t0)
{
    return std::chrono::duration<double, std::milli>(Clock::now() - t0)
        .count();
}

const int kSizes[] = {1, 2, 4, 8, 16, 32};

/** Which execution core(s) the sweep times. */
enum class BackendMode { kReference, kThreaded, kRegion, kBoth };

/** One (benchmark, machine size) timing. */
struct RunTiming
{
    std::string name;
    int tiles = 0;
    int64_t cycles = 0;
    int64_t placement_swaps = 0;
    raw::PhaseTimings compile;
    double sim_ms = 0;          ///< selected backend (reference in both-mode)
    double sim_ms_threaded = 0; ///< threaded core (both-mode only)
    double sim_ms_region = 0;   ///< region-compiled core (both-mode only)
};

RunTiming
time_one(const raw::BenchmarkProgram &prog, int tiles,
         BackendMode mode)
{
    RunTiming rt;
    rt.name = prog.name;
    rt.tiles = tiles;
    raw::CompileOutput out = raw::compile_source(
        prog.source, raw::MachineConfig::base(tiles));
    rt.compile = out.stats.timings;
    rt.placement_swaps = out.stats.placement_swaps;
    raw::SimBackend primary = raw::SimBackend::kReference;
    if (mode == BackendMode::kThreaded)
        primary = raw::SimBackend::kThreaded;
    else if (mode == BackendMode::kRegion)
        primary = raw::SimBackend::kRegion;
    Clock::time_point t0 = Clock::now();
    raw::Simulator sim(out.program, {}, {}, primary);
    raw::SimResult r = sim.run();
    rt.sim_ms = ms_since(t0);
    rt.cycles = r.cycles;
    if (mode == BackendMode::kBoth) {
        auto rerun = [&](raw::SimBackend backend, double &ms) {
            Clock::time_point t1 = Clock::now();
            raw::Simulator sim2(out.program, {}, {}, backend);
            raw::SimResult r2 = sim2.run();
            ms = ms_since(t1);
            if (r2.cycles != r.cycles) {
                std::fprintf(stderr,
                             "%s n=%d: backend cycle mismatch "
                             "(reference %lld, %s %lld)\n",
                             prog.name.c_str(), tiles,
                             static_cast<long long>(r.cycles),
                             raw::sim_backend_name(backend),
                             static_cast<long long>(r2.cycles));
                std::exit(1);
            }
        };
        rerun(raw::SimBackend::kThreaded, rt.sim_ms_threaded);
        rerun(raw::SimBackend::kRegion, rt.sim_ms_region);
    }
    return rt;
}

/**
 * Large-mesh scaling scenario: the full suite at 16/32/64/128 tiles
 * (past Table 3's 32-tile ceiling), each point compiled once and
 * simulated under all three cores with a cycle-equality assert.  A
 * 1-tile simulation per benchmark supplies the speedup baseline.
 * Always runs serially so each core's cycles/s is an honest
 * single-thread figure.
 */
struct ScalePoint
{
    std::string name;
    int tiles = 0;
    int64_t cycles = 0;
    int64_t base_cycles = 0; ///< same benchmark at 1 tile
    double compile_ms = 0;
    double ref_ms = 0, thr_ms = 0, reg_ms = 0;
};

std::vector<ScalePoint>
run_scaling(bool tiny)
{
    const int meshes[] = {16, 32, 64, 128};
    std::vector<ScalePoint> pts;
    for (const raw::BenchmarkProgram &prog : raw::benchmark_suite()) {
        if (tiny && prog.name != "jacobi")
            continue;
        // 1-tile baseline cycles (cycle count is core-independent;
        // use the threaded core, it is the cheapest way to get it).
        raw::CompileOutput base = raw::compile_source(
            prog.source, raw::MachineConfig::base(1));
        raw::Simulator bsim(base.program, {}, {},
                            raw::SimBackend::kThreaded);
        int64_t base_cycles = bsim.run().cycles;
        for (int n : meshes) {
            if (tiny && n > 64)
                continue;
            ScalePoint p;
            p.name = prog.name;
            p.tiles = n;
            p.base_cycles = base_cycles;
            Clock::time_point tc = Clock::now();
            raw::CompileOutput out = raw::compile_source(
                prog.source, raw::MachineConfig::base(n));
            p.compile_ms = ms_since(tc);
            auto run_core = [&](raw::SimBackend backend, double &ms) {
                Clock::time_point t0 = Clock::now();
                raw::Simulator sim(out.program, {}, {}, backend);
                raw::SimResult r = sim.run();
                ms = ms_since(t0);
                return r.cycles;
            };
            p.cycles = run_core(raw::SimBackend::kReference, p.ref_ms);
            int64_t ct =
                run_core(raw::SimBackend::kThreaded, p.thr_ms);
            int64_t cr = run_core(raw::SimBackend::kRegion, p.reg_ms);
            if (ct != p.cycles || cr != p.cycles) {
                std::fprintf(
                    stderr,
                    "scaling %s n=%d: backend cycle mismatch "
                    "(reference %lld, threaded %lld, region %lld)\n",
                    p.name.c_str(), n,
                    static_cast<long long>(p.cycles),
                    static_cast<long long>(ct),
                    static_cast<long long>(cr));
                std::exit(1);
            }
            std::printf("  scaling %-14s n=%-4d %9lld cycles  "
                        "(%.2fx vs n=1)  compile %8.1f ms  "
                        "sim ref %7.1f / thr %7.1f / reg %7.1f ms\n",
                        p.name.c_str(), n,
                        static_cast<long long>(p.cycles),
                        p.cycles > 0 ? static_cast<double>(base_cycles) /
                                           static_cast<double>(p.cycles)
                                     : 0,
                        p.compile_ms, p.ref_ms, p.thr_ms, p.reg_ms);
            std::fflush(stdout);
            pts.push_back(p);
        }
    }
    return pts;
}

/**
 * Compile-throughput scenario: the same PGO portfolio compile (the
 * most compile-intensive thing the driver does — every candidate is
 * a full compile plus a fault-free simulation) over compile-heavy
 * points, timed three ways: schedule cache off (the pre-cache
 * baseline), cache on but cold, and cache warm.  The picked programs
 * must be cycle-identical in all three modes.
 */
struct PgoSweep
{
    bool ran = false;
    std::vector<std::string> names;
    std::vector<int64_t> cycles;
    double baseline_ms = 0;
    double cold_ms = 0;
    double warm_ms = 0;
    raw::SchedCacheCounters warm_cache;
};

PgoSweep
run_pgo_sweep(bool tiny, int jobs)
{
    // Points where a PGO race is actually worth running: compile
    // cost dominated by orchestration (partition + schedule), i.e.
    // the work the cache reuses.  cholesky n=8 is deliberately
    // absent — its unroll emits ~680k static instructions for an
    // 8-tile machine, so candidate compiles there are bound by code
    // emission and linking, which no schedule cache can share.
    std::vector<std::pair<const char *, int>> points;
    if (tiny) {
        points = {{"jacobi", 4}};
    } else {
        points = {{"fpppp-kernel", 8},
                  {"cholesky", 16},
                  {"cholesky", 32},
                  {"fpppp-kernel", 16},
                  {"fpppp-kernel", 32}};
    }

    PgoSweep sw;
    sw.ran = true;
    for (auto [name, tiles] : points)
        sw.names.push_back(std::string(name) + "_n" +
                           std::to_string(tiles));

    auto sweep = [&](bool cache, const char *mode,
                     raw::SchedCacheCounters *ctr) {
        Clock::time_point t0 = Clock::now();
        std::vector<int64_t> cycles;
        for (auto [name, tiles] : points) {
            Clock::time_point tp = Clock::now();
            const raw::BenchmarkProgram &prog = raw::benchmark(name);
            raw::CompilerOptions opts;
            opts.pgo = true;
            opts.orch.use_cache = cache;
            opts.orch.jobs = jobs;
            raw::CompileOutput out = raw::compile_source(
                prog.source, raw::MachineConfig::base(tiles), opts);
            double compile_ms = ms_since(tp);
            raw::Simulator sim(out.program);
            cycles.push_back(sim.run().cycles);
            if (ctr)
                ctr->add(out.stats.cache);
            std::printf("  pgo %-14s n=%-3d %9.1f ms "
                        "(compile %.1f, verify-sim %.1f) (%s)\n",
                        name, tiles, ms_since(tp), compile_ms,
                        ms_since(tp) - compile_ms, mode);
            std::fflush(stdout);
        }
        return std::make_pair(ms_since(t0), cycles);
    };

    raw::SchedCache::instance().clear_memory();
    auto [base_ms, base_cycles] = sweep(false, "baseline", nullptr);
    raw::SchedCache::instance().clear_memory();
    auto [cold_ms, cold_cycles] = sweep(true, "cold", nullptr);
    raw::SchedCacheCounters after_cold =
        raw::SchedCache::instance().totals();
    std::fprintf(stderr,
                 "pgo sweep: cache %lld bytes, %lld hit / %lld miss "
                 "after cold\n",
                 static_cast<long long>(
                     raw::SchedCache::instance().memory_bytes()),
                 static_cast<long long>(after_cold.hits()),
                 static_cast<long long>(after_cold.misses()));
    auto [warm_ms, warm_cycles] = sweep(true, "warm", &sw.warm_cache);
    raw::SchedCacheCounters after_warm =
        raw::SchedCache::instance().totals();
    std::fprintf(stderr,
                 "pgo sweep: %lld hit / %lld miss in warm pass\n",
                 static_cast<long long>(after_warm.hits() -
                                        after_cold.hits()),
                 static_cast<long long>(after_warm.misses() -
                                        after_cold.misses()));

    if (base_cycles != cold_cycles || base_cycles != warm_cycles) {
        std::fprintf(stderr,
                     "pgo sweep: cycles differ across cache modes\n");
        std::exit(1);
    }
    sw.cycles = base_cycles;
    sw.baseline_ms = base_ms;
    sw.cold_ms = cold_ms;
    sw.warm_ms = warm_ms;
    return sw;
}

/** cycles / (ms/1e3), 0 when the denominator is zero (never inf/nan). */
double
per_sec(int64_t count, double ms)
{
    return ms > 0 ? static_cast<double>(count) / (ms / 1e3) : 0;
}

void
write_json(const std::string &path, const std::vector<RunTiming> &runs,
           int jobs, double wall_ms, const PgoSweep &pgo,
           const std::vector<ScalePoint> &scaling, BackendMode mode)
{
    raw::PhaseTimings sum;
    int64_t cycles = 0, swaps = 0;
    double sim_ms = 0, sim_ms_threaded = 0, sim_ms_region = 0;
    for (const RunTiming &rt : runs) {
        sum.parse_ms += rt.compile.parse_ms;
        sum.unroll_ms += rt.compile.unroll_ms;
        sum.lower_ms += rt.compile.lower_ms;
        sum.transform_ms += rt.compile.transform_ms;
        sum.orchestrate_ms += rt.compile.orchestrate_ms;
        sum.link_ms += rt.compile.link_ms;
        sum.total_ms += rt.compile.total_ms;
        cycles += rt.cycles;
        swaps += rt.placement_swaps;
        sim_ms += rt.sim_ms;
        sim_ms_threaded += rt.sim_ms_threaded;
        sim_ms_region += rt.sim_ms_region;
    }
    double cycles_per_sec = per_sec(cycles, sim_ms);
    double swaps_per_sec = per_sec(swaps, sum.orchestrate_ms);

    std::ofstream out(path);
    if (!out) {
        std::fprintf(stderr, "cannot open %s for writing\n",
                     path.c_str());
        std::exit(1);
    }
    char buf[256];
    out << "{\n  \"table\": \"wallclock\",\n";
    out << "  \"jobs\": " << jobs << ",\n";
    std::snprintf(buf, sizeof(buf), "  \"sweep_wall_ms\": %.1f,\n",
                  wall_ms);
    out << buf;
    std::snprintf(
        buf, sizeof(buf),
        "  \"compile_ms\": {\"parse\": %.1f, \"unroll\": %.1f, "
        "\"lower\": %.1f, \"transform\": %.1f, \"orchestrate\": %.1f, "
        "\"link\": %.1f, \"total\": %.1f},\n",
        sum.parse_ms, sum.unroll_ms, sum.lower_ms, sum.transform_ms,
        sum.orchestrate_ms, sum.link_ms, sum.total_ms);
    out << buf;
    std::snprintf(buf, sizeof(buf),
                  "  \"sim\": {\"cycles\": %lld, \"wall_ms\": %.1f, "
                  "\"cycles_per_sec\": %.0f},\n",
                  static_cast<long long>(cycles), sim_ms,
                  cycles_per_sec);
    out << buf;
    std::snprintf(buf, sizeof(buf),
                  "  \"placement\": {\"swaps\": %lld, "
                  "\"swaps_per_sec\": %.0f},\n",
                  static_cast<long long>(swaps), swaps_per_sec);
    out << buf;
    if (mode == BackendMode::kBoth) {
        double ref_cps = per_sec(cycles, sim_ms);
        double thr_cps = per_sec(cycles, sim_ms_threaded);
        double reg_cps = per_sec(cycles, sim_ms_region);
        std::snprintf(
            buf, sizeof(buf),
            "  \"sim_backend\": {\"reference_cps\": %.0f, "
            "\"threaded_cps\": %.0f, \"region_cps\": %.0f, "
            "\"speedup\": %.2f, \"speedup_region\": %.2f, "
            "\"cycles_identical\": true},\n",
            ref_cps, thr_cps, reg_cps,
            ref_cps > 0 ? thr_cps / ref_cps : 0,
            ref_cps > 0 ? reg_cps / ref_cps : 0);
        out << buf;
    }
    if (!scaling.empty()) {
        // Per-mesh aggregate cycles/s for each core, then the raw
        // per-run rows (speedup is vs the same benchmark at 1 tile).
        out << "  \"scaling\": {\"mesh\": [";
        bool first = true;
        for (int n : {16, 32, 64, 128}) {
            int64_t c = 0;
            double rms = 0, tms = 0, gms = 0;
            for (const ScalePoint &p : scaling)
                if (p.tiles == n) {
                    c += p.cycles;
                    rms += p.ref_ms;
                    tms += p.thr_ms;
                    gms += p.reg_ms;
                }
            if (c == 0)
                continue;
            double ref_cps = per_sec(c, rms);
            double reg_cps = per_sec(c, gms);
            std::snprintf(
                buf, sizeof(buf),
                "%s\n    {\"tiles\": %d, \"cycles\": %lld, "
                "\"reference_cps\": %.0f, \"threaded_cps\": %.0f, "
                "\"region_cps\": %.0f, \"region_vs_reference\": %.2f}",
                first ? "" : ",", n, static_cast<long long>(c),
                ref_cps, per_sec(c, tms), reg_cps,
                ref_cps > 0 ? reg_cps / ref_cps : 0);
            out << buf;
            first = false;
        }
        out << "],\n   \"runs\": [";
        for (size_t i = 0; i < scaling.size(); i++) {
            const ScalePoint &p = scaling[i];
            std::snprintf(
                buf, sizeof(buf),
                "%s\n    {\"name\": \"%s\", \"tiles\": %d, "
                "\"cycles\": %lld, \"speedup_vs_1\": %.2f, "
                "\"compile_ms\": %.1f, \"sim_ms_reference\": %.1f, "
                "\"sim_ms_threaded\": %.1f, \"sim_ms_region\": %.1f}",
                i ? "," : "", p.name.c_str(), p.tiles,
                static_cast<long long>(p.cycles),
                p.cycles > 0 ? static_cast<double>(p.base_cycles) /
                                   static_cast<double>(p.cycles)
                             : 0,
                p.compile_ms, p.ref_ms, p.thr_ms, p.reg_ms);
            out << buf;
        }
        out << "],\n   \"cycles_identical\": true},\n";
    }
    if (pgo.ran) {
        std::snprintf(
            buf, sizeof(buf),
            "  \"pgo_sweep\": {\"baseline_ms\": %.1f, "
            "\"cold_ms\": %.1f, \"warm_ms\": %.1f,\n",
            pgo.baseline_ms, pgo.cold_ms, pgo.warm_ms);
        out << buf;
        std::snprintf(
            buf, sizeof(buf),
            "    \"speedup_cold\": %.2f, \"speedup_warm\": %.2f, "
            "\"cycles_identical\": true,\n",
            pgo.cold_ms > 0 ? pgo.baseline_ms / pgo.cold_ms : 0,
            pgo.warm_ms > 0 ? pgo.baseline_ms / pgo.warm_ms : 0);
        out << buf;
        std::snprintf(
            buf, sizeof(buf),
            "    \"warm_cache\": {\"hits\": %lld, \"misses\": %lld, "
            "\"disk_hits\": %lld},\n",
            static_cast<long long>(pgo.warm_cache.hits()),
            static_cast<long long>(pgo.warm_cache.misses()),
            static_cast<long long>(pgo.warm_cache.disk_hits));
        out << buf;
        out << "    \"points\": [";
        for (size_t i = 0; i < pgo.names.size(); i++) {
            std::snprintf(
                buf, sizeof(buf),
                "%s{\"name\": \"%s\", \"cycles\": %lld}",
                i ? ", " : "", pgo.names[i].c_str(),
                static_cast<long long>(pgo.cycles[i]));
            out << buf;
        }
        out << "]},\n";
    }
    out << "  \"runs\": [\n";
    for (size_t i = 0; i < runs.size(); i++) {
        const RunTiming &rt = runs[i];
        std::snprintf(
            buf, sizeof(buf),
            "    {\"name\": \"%s\", \"tiles\": %d, \"cycles\": %lld, "
            "\"compile_ms\": %.1f, \"sim_ms\": %.1f}%s\n",
            rt.name.c_str(), rt.tiles,
            static_cast<long long>(rt.cycles), rt.compile.total_ms,
            rt.sim_ms, i + 1 < runs.size() ? "," : "");
        out << buf;
    }
    out << "  ]\n}\n";
    std::printf("wrote %s\n", path.c_str());
}

} // namespace

int
main(int argc, char **argv)
{
    std::string json_out = "BENCH_wallclock.json";
    int jobs = 1;
    bool tiny = false;
    bool pgo_sweep = false;
    bool scaling = false;
    BackendMode mode = BackendMode::kReference;
    for (int i = 1; i < argc; i++) {
        if (std::strcmp(argv[i], "--json-out") == 0 && i + 1 < argc)
            json_out = argv[++i];
        else if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc)
            jobs = raw::resolve_jobs(static_cast<int>(
                raw::cli::parse_long_in("bench_wallclock", argv[++i],
                                        "--jobs", 0, 4096,
                                        "a worker count in 0..4096")));
        else if (std::strcmp(argv[i], "--sim-backend") == 0 &&
                 i + 1 < argc) {
            std::string b = argv[++i];
            if (b == "reference")
                mode = BackendMode::kReference;
            else if (b == "threaded")
                mode = BackendMode::kThreaded;
            else if (b == "region")
                mode = BackendMode::kRegion;
            else if (b == "both")
                mode = BackendMode::kBoth;
            else
                raw::cli::bad_value("bench_wallclock", "--sim-backend",
                                    argv[i],
                                    "reference, threaded, region or "
                                    "both");
        } else if (std::strcmp(argv[i], "--tiny") == 0)
            tiny = true;
        else if (std::strcmp(argv[i], "--pgo-sweep") == 0)
            pgo_sweep = true;
        else if (std::strcmp(argv[i], "--scaling") == 0)
            scaling = true;
    }

    std::vector<std::pair<const raw::BenchmarkProgram *, int>> points;
    if (tiny) {
        points.emplace_back(&raw::benchmark("jacobi"), 4);
    } else {
        for (const raw::BenchmarkProgram &prog :
             raw::benchmark_suite())
            for (int n : kSizes)
                points.emplace_back(&prog, n);
    }

    std::vector<RunTiming> runs(points.size());
    Clock::time_point t0 = Clock::now();
    raw::run_parallel(static_cast<int>(points.size()), jobs,
                      [&](int i) {
                          runs[i] = time_one(*points[i].first,
                                             points[i].second, mode);
                      });
    double wall_ms = ms_since(t0);

    std::printf("%zu runs in %.1f ms (jobs=%d)\n", runs.size(),
                wall_ms, jobs);
    for (const RunTiming &rt : runs)
        std::printf(
            "  %-14s n=%-3d compile %8.1f ms  sim %8.1f ms  "
            "(%lld cycles)\n",
            rt.name.c_str(), rt.tiles, rt.compile.total_ms, rt.sim_ms,
            static_cast<long long>(rt.cycles));

    PgoSweep pgo;
    if (pgo_sweep) {
        pgo = run_pgo_sweep(tiny, jobs);
        std::printf("pgo sweep: baseline %.1f ms, cold %.1f ms, "
                    "warm %.1f ms (%.2fx warm speedup)\n",
                    pgo.baseline_ms, pgo.cold_ms, pgo.warm_ms,
                    pgo.warm_ms > 0 ? pgo.baseline_ms / pgo.warm_ms
                                    : 0);
    }
    std::vector<ScalePoint> scale;
    if (scaling)
        scale = run_scaling(tiny);
    write_json(json_out, runs, jobs, wall_ms, pgo, scale, mode);
    return 0;
}
