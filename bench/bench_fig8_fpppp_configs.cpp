/**
 * @file
 * Figure 8 reproduction: fpppp-kernel speedup under three machine
 * configurations —
 *   base:    32 registers/tile, Table 1 latencies;
 *   inf-reg: unlimited registers per tile (upper bound without
 *            register-spill pressure);
 *   1-cycle: every instruction takes one cycle (lowers the
 *            computation/communication ratio, so this curve is a
 *            lower bound on scaling).
 *
 * Speedups are normalized to each configuration's own one-tile
 * sequential baseline, exactly as the paper does (its base/inf-reg
 * baseline is 7478 cycles and its 1-cycle baseline is 3998).
 */

#include <cstdio>
#include <functional>

#include "harness/harness.hpp"

namespace {

using namespace raw;

using ConfigFn = std::function<MachineConfig(int)>;

void
run_config(const char *name, const ConfigFn &cfg,
           const std::string &src, const ConfigFn &baseline_cfg)
{
    // The paper normalizes base and inf-reg against the same 32-reg
    // sequential baseline (7478 cycles there); only 1-cycle gets its
    // own (3998).
    CompileOutput base_out = compile_baseline_for(src, baseline_cfg(1));
    Simulator base_sim(base_out.program);
    int64_t base_cycles = base_sim.run().cycles;
    std::printf("%-8s baseline %lld cycles:", name,
                static_cast<long long>(base_cycles));
    for (int n : {1, 2, 4, 8, 16, 32}) {
        CompilerOptions opts;
        CompileOutput out = compile_source(src, cfg(n), opts);
        Simulator sim(out.program);
        int64_t cycles = sim.run().cycles;
        std::printf("  %.2f", static_cast<double>(base_cycles) /
                                  static_cast<double>(cycles));
        std::fflush(stdout);
    }
    std::printf("\n");
}

} // namespace

int
main()
{
    const std::string &src = benchmark("fpppp-kernel").source;
    std::printf("Figure 8: fpppp-kernel speedup under machine "
                "configurations\n");
    std::printf("%-8s %-24s  N=1   N=2   N=4   N=8   N=16  N=32\n",
                "config", "");
    auto base = [](int n) { return MachineConfig::base(n); };
    auto inf_reg = [](int n) { return MachineConfig::inf_reg(n); };
    auto one_cycle = [](int n) { return MachineConfig::one_cycle(n); };
    run_config("base", base, src, base);
    run_config("inf-reg", inf_reg, src, base);
    run_config("1-cycle", one_cycle, src, one_cycle);
    std::printf("\npaper:   base  0.5/0.9/1.9/4.0/8.1/13.7 ; inf-reg "
                "higher at every point ;\n"
                "         1-cycle lower (13.7 vs 6.2 at 32 tiles) but "
                "still scaling to 32.\n");
    return 0;
}
