/**
 * @file
 * Ablation: affine staticization (Section 5.3).  With unrolling
 * disabled, every reference whose home tile varies across iterations
 * must use the dynamic network; this bench shows the cost and the
 * static/dynamic reference counts.
 */

#include <cstdio>

#include "harness/harness.hpp"

namespace {

using namespace raw;

} // namespace

int
main()
{
    std::printf("Ablation: loop unrolling / staticization (8 tiles)\n");
    std::printf("%-14s %-16s %-16s %-16s %-10s %-10s\n", "Benchmark",
                "cycles(unroll)", "cycles(+modulo)", "cycles(none)",
                "dyn(unroll)", "dyn(none)");
    for (const char *name : {"jacobi", "mxm", "life"}) {
        const BenchmarkProgram &prog = benchmark(name);
        CompilerOptions on;
        CompilerOptions mod;
        mod.orch.sched.modulo = true;
        CompilerOptions off;
        off.unroll.enable = false;
        RunResult a = run_rawcc(prog.source, MachineConfig::base(8),
                                prog.check_array, on);
        RunResult m = run_rawcc(prog.source, MachineConfig::base(8),
                                prog.check_array, mod);
        RunResult b = run_rawcc(prog.source, MachineConfig::base(8),
                                prog.check_array, off);
        if (a.check_words != b.check_words ||
            a.check_words != m.check_words)
            std::printf("%-14s RESULT MISMATCH\n", name);
        std::printf("%-14s %-16lld %-16lld %-16lld %-10d %-10d\n",
                    name, static_cast<long long>(a.cycles),
                    static_cast<long long>(m.cycles),
                    static_cast<long long>(b.cycles),
                    a.stats.dynamic_refs, b.stats.dynamic_refs);
    }
    return 0;
}
