/**
 * @file
 * Appendix A in action: dynamic events (injected cache-miss latency)
 * stretch execution time but, by the static ordering property, never
 * change results and never deadlock.  Sweeps miss rates and reports
 * cycles; verifies bit-exact results at every point.
 */

#include <cstdio>

#include "harness/harness.hpp"

int
main()
{
    using namespace raw;
    std::printf("Static ordering under dynamic events (16 tiles)\n");
    std::printf("%-14s %-10s %-10s %-10s %-10s\n", "Benchmark",
                "0%%", "2%%", "10%%", "30%%");
    for (const char *name : {"jacobi", "mxm", "life"}) {
        const BenchmarkProgram &prog = benchmark(name);
        CompileOutput out = compile_source(
            prog.source, MachineConfig::base(16), CompilerOptions{});
        std::vector<uint32_t> ref;
        std::printf("%-14s ", name);
        bool ok = true;
        for (double rate : {0.0, 0.02, 0.10, 0.30}) {
            FaultConfig f;
            f.miss_rate = rate;
            f.penalty = 20;
            f.seed = 12345;
            Simulator sim(out.program, f);
            SimResult r = sim.run();
            std::vector<uint32_t> words =
                sim.read_array(prog.check_array);
            if (ref.empty())
                ref = words;
            else if (words != ref)
                ok = false;
            std::printf("%-10lld ", static_cast<long long>(r.cycles));
        }
        std::printf("%s\n", ok ? "results identical"
                               : "RESULT CHANGED (BUG)");
    }
    return 0;
}
