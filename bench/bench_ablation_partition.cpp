/**
 * @file
 * Ablation: the instruction partitioner's design choices (Section
 * 4.1).  Compares Dominant Sequence Clustering against no clustering
 * (every node its own cluster), and greedy-swap placement against
 * arbitrary placement and simulated annealing, on the
 * parallelism-rich benchmarks.
 */

#include <cstdio>

#include "harness/harness.hpp"

namespace {

using namespace raw;

int64_t
cycles_with(const BenchmarkProgram &prog, int n, ClusterMode cm,
            PlaceMode pm)
{
    CompilerOptions opts;
    opts.orch.partition.cluster_mode = cm;
    opts.orch.partition.place_mode = pm;
    RunResult r =
        run_rawcc(prog.source, MachineConfig::base(n),
                  prog.check_array, opts);
    return r.cycles;
}

} // namespace

int
main()
{
    std::printf("Ablation: partitioner (16 tiles), cycles\n");
    std::printf("%-14s %-12s %-12s %-12s %-12s\n", "Benchmark",
                "DSC+greedy", "unit+greedy", "DSC+arbitrary",
                "DSC+anneal");
    for (const char *name : {"fpppp-kernel", "jacobi", "mxm"}) {
        const BenchmarkProgram &prog = benchmark(name);
        int64_t dsc = cycles_with(prog, 16, ClusterMode::kDSC,
                                  PlaceMode::kGreedySwap);
        int64_t unit = cycles_with(prog, 16, ClusterMode::kUnitNodes,
                                   PlaceMode::kGreedySwap);
        int64_t arb = cycles_with(prog, 16, ClusterMode::kDSC,
                                  PlaceMode::kArbitrary);
        int64_t ann = cycles_with(prog, 16, ClusterMode::kDSC,
                                  PlaceMode::kAnneal);
        std::printf("%-14s %-12lld %-12lld %-12lld %-12lld\n", name,
                    static_cast<long long>(dsc),
                    static_cast<long long>(unit),
                    static_cast<long long>(arb),
                    static_cast<long long>(ann));
    }
    return 0;
}
