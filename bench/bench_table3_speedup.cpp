/**
 * @file
 * Table 3 reproduction: benchmark speedup of RAWCC-compiled code
 * versus the sequential baseline ("Machsuif Mips compiler"), for
 * N = 1, 2, 4, 8, 16, 32 tiles.
 *
 * Prints the paper-format table and writes a machine-readable
 * BENCH_table3.json (override the path with --json-out) with cycles,
 * speedup and the profiled occupancy breakdown per benchmark and
 * machine size — the seed of the perf trajectory (see
 * docs/profiling.md).  With --gbench it additionally runs
 * google-benchmark timings of the compile+simulate pipeline.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include <benchmark/benchmark.h>

#include "harness/cli.hpp"
#include "harness/harness.hpp"
#include "harness/parallel.hpp"
#include "sim/profile.hpp"

namespace {

const int kSizes[] = {1, 2, 4, 8, 16, 32};

// Paper values for side-by-side comparison (Table 3).
const std::map<std::string, std::array<double, 6>> kPaper = {
    {"life", {0.91, 1.2, 1.6, 1.8, 1.9, 0}},
    {"vpenta", {0.92, 1.2, 1.8, 2.2, 2.6, 3.0}},
    {"cholesky", {0.90, 1.3, 2.1, 3.3, 5.3, 0}},
    {"tomcatv", {0.97, 1.7, 2.7, 3.8, 5.6, 7.8}},
    {"fpppp-kernel", {0.51, 0.92, 1.9, 4.0, 8.1, 13.7}},
    {"mxm", {0.92, 1.8, 3.3, 6.3, 10.2, 0}},
    {"jacobi", {0.97, 1.6, 3.4, 5.6, 15, 22}},
};

/** One (benchmark, machine size) measurement. */
struct SizeResult
{
    int tiles = 0;
    int64_t cycles = 0;
    double speedup = 0;
    /** Same point compiled with --modulo (software pipelining). */
    int64_t modulo_cycles = 0;
    double modulo_speedup = 0;
    /** Proc cycle-category totals summed over tiles. */
    std::array<int64_t, raw::kNumProcCycleCats> occupancy{};
};

struct BenchResult
{
    std::string name;
    int64_t baseline_cycles = 0;
    std::vector<SizeResult> sizes;
};

std::vector<BenchResult>
measure(int jobs)
{
    const std::vector<raw::BenchmarkProgram> &suite =
        raw::benchmark_suite();
    const int n_benches = static_cast<int>(suite.size());
    const int n_sizes = static_cast<int>(std::size(kSizes));
    std::vector<BenchResult> out(n_benches);
    for (int b = 0; b < n_benches; b++) {
        out[b].name = suite[b].name;
        out[b].sizes.resize(n_sizes);
    }

    // Fan (benchmark × machine size) over the worker pool; every job
    // writes only its own slot, so the table is identical at any
    // --jobs value.  The baseline is compiled and simulated once per
    // benchmark (cached_baseline), not once per machine size.
    raw::run_parallel(n_benches * n_sizes, jobs, [&](int idx) {
        const raw::BenchmarkProgram &prog = suite[idx / n_sizes];
        const int n = kSizes[idx % n_sizes];
        const raw::RunResult &base = raw::cached_baseline(prog);
        out[idx / n_sizes].baseline_cycles = base.cycles;
        raw::RunResult par = raw::run_rawcc(
            prog.source, raw::MachineConfig::base(n),
            prog.check_array);
        SizeResult sr;
        sr.tiles = n;
        sr.cycles = par.cycles;
        // Guard the ratio so a degenerate zero-cycle run can never
        // write inf/nan into the committed JSON.
        sr.speedup = par.cycles > 0
                         ? static_cast<double>(base.cycles) /
                               static_cast<double>(par.cycles)
                         : 0.0;
        raw::CompilerOptions mod;
        mod.orch.sched.modulo = true;
        raw::RunResult piped = raw::run_rawcc(
            prog.source, raw::MachineConfig::base(n),
            prog.check_array, mod);
        sr.modulo_cycles = piped.cycles;
        sr.modulo_speedup =
            piped.cycles > 0
                ? static_cast<double>(base.cycles) /
                      static_cast<double>(piped.cycles)
                : 0.0;
        for (const raw::TileProfile &tp : par.sim.profile.tiles)
            for (int c = 0; c < raw::kNumProcCycleCats; c++)
                sr.occupancy[c] += tp.proc_cycles[c];
        out[idx / n_sizes].sizes[idx % n_sizes] = sr;
    });

    for (const BenchResult &br : out) {
        std::printf("%-14s", br.name.c_str());
        for (const SizeResult &sr : br.sizes)
            std::printf("  %-9.2f", sr.speedup);
        std::printf("   (seq RT %lld cycles)\n",
                    static_cast<long long>(br.baseline_cycles));
        std::printf("%-14s", "  [+modulo]");
        for (const SizeResult &sr : br.sizes)
            std::printf("  %-9.2f", sr.modulo_speedup);
        std::printf("\n");
        auto it = kPaper.find(br.name);
        if (it != kPaper.end()) {
            std::printf("%-14s", "  [paper]");
            for (double v : it->second) {
                if (v > 0)
                    std::printf("  %-9.2f", v);
                else
                    std::printf("  %-9s", "*");
            }
            std::printf("\n");
        }
    }
    return out;
}

void
write_json(const std::string &path,
           const std::vector<BenchResult> &results)
{
    std::ofstream out(path);
    if (!out) {
        std::fprintf(stderr, "cannot open %s for writing\n",
                     path.c_str());
        std::exit(1);
    }
    out << "{\n  \"table\": \"table3_speedup\",\n  \"sizes\": [";
    for (size_t i = 0; i < std::size(kSizes); i++)
        out << (i ? ", " : "") << kSizes[i];
    out << "],\n  \"benchmarks\": [\n";
    for (size_t b = 0; b < results.size(); b++) {
        const BenchResult &br = results[b];
        out << "    {\n      \"name\": \"" << br.name << "\",\n"
            << "      \"baseline_cycles\": " << br.baseline_cycles
            << ",\n      \"results\": [\n";
        for (size_t s = 0; s < br.sizes.size(); s++) {
            const SizeResult &sr = br.sizes[s];
            char speedup[32];
            std::snprintf(speedup, sizeof(speedup), "%.4f",
                          sr.speedup);
            char mod_speedup[32];
            std::snprintf(mod_speedup, sizeof(mod_speedup), "%.4f",
                          sr.modulo_speedup);
            out << "        {\"tiles\": " << sr.tiles
                << ", \"cycles\": " << sr.cycles
                << ", \"speedup\": " << speedup
                << ", \"modulo_cycles\": " << sr.modulo_cycles
                << ", \"modulo_speedup\": " << mod_speedup
                << ", \"occupancy\": {";
            for (int c = 0; c < raw::kNumProcCycleCats; c++)
                out << (c ? ", " : "") << "\""
                    << raw::proc_cycle_name(
                           static_cast<raw::ProcCycle>(c))
                    << "\": " << sr.occupancy[c];
            out << "}}" << (s + 1 < br.sizes.size() ? "," : "")
                << "\n";
        }
        out << "      ]\n    }"
            << (b + 1 < results.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
    std::printf("wrote %s\n", path.c_str());
}

void
bm_compile_and_run(benchmark::State &state, const std::string &name,
                   int n)
{
    const raw::BenchmarkProgram &prog = raw::benchmark(name);
    for (auto _ : state) {
        raw::RunResult r = raw::run_rawcc(
            prog.source, raw::MachineConfig::base(n),
            prog.check_array);
        state.counters["cycles"] =
            static_cast<double>(r.cycles);
    }
}

} // namespace

int
main(int argc, char **argv)
{
    bool gbench = false;
    std::string json_out = "BENCH_table3.json";
    int jobs = 1;
    for (int i = 1; i < argc; i++) {
        if (std::strcmp(argv[i], "--gbench") == 0)
            gbench = true;
        else if (std::strcmp(argv[i], "--json-out") == 0 &&
                 i + 1 < argc)
            json_out = argv[++i];
        else if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc)
            jobs = raw::resolve_jobs(static_cast<int>(
                raw::cli::parse_long_in("bench_table3", argv[++i],
                                        "--jobs", 0, 1024,
                                        "a worker count in [0, 1024]")));
    }

    std::printf("Table 3: Benchmark Speedup (RAWCC vs. sequential "
                "baseline)\n");
    std::printf("%-14s", "Benchmark");
    for (int n : kSizes)
        std::printf("  N=%-7d", n);
    std::printf("\n");
    std::vector<BenchResult> results = measure(jobs);
    write_json(json_out, results);
    if (!gbench)
        return 0;

    for (const raw::BenchmarkProgram &prog : raw::benchmark_suite())
        for (int n : {1, 8, 32})
            benchmark::RegisterBenchmark(
                (prog.name + "/n" + std::to_string(n)).c_str(),
                [name = prog.name, n](benchmark::State &st) {
                    bm_compile_and_run(st, name, n);
                })
                ->Unit(benchmark::kMillisecond)
                ->Iterations(1);
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
