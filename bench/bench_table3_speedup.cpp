/**
 * @file
 * Table 3 reproduction: benchmark speedup of RAWCC-compiled code
 * versus the sequential baseline ("Machsuif Mips compiler"), for
 * N = 1, 2, 4, 8, 16, 32 tiles.
 *
 * Prints the paper-format table, then (optionally) runs
 * google-benchmark timings of the compile+simulate pipeline when
 * invoked with --gbench.
 */

#include <cstdio>
#include <cstring>
#include <map>

#include <benchmark/benchmark.h>

#include "harness/harness.hpp"

namespace {

const int kSizes[] = {1, 2, 4, 8, 16, 32};

// Paper values for side-by-side comparison (Table 3).
const std::map<std::string, std::array<double, 6>> kPaper = {
    {"life", {0.91, 1.2, 1.6, 1.8, 1.9, 0}},
    {"vpenta", {0.92, 1.2, 1.8, 2.2, 2.6, 3.0}},
    {"cholesky", {0.90, 1.3, 2.1, 3.3, 5.3, 0}},
    {"tomcatv", {0.97, 1.7, 2.7, 3.8, 5.6, 7.8}},
    {"fpppp-kernel", {0.51, 0.92, 1.9, 4.0, 8.1, 13.7}},
    {"mxm", {0.92, 1.8, 3.3, 6.3, 10.2, 0}},
    {"jacobi", {0.97, 1.6, 3.4, 5.6, 15, 22}},
};

void
print_table()
{
    std::printf("Table 3: Benchmark Speedup (RAWCC vs. sequential "
                "baseline)\n");
    std::printf("%-14s", "Benchmark");
    for (int n : kSizes)
        std::printf("  N=%-7d", n);
    std::printf("\n");
    for (const raw::BenchmarkProgram &prog : raw::benchmark_suite()) {
        raw::RunResult base =
            raw::run_baseline(prog.source, prog.check_array);
        std::printf("%-14s", prog.name.c_str());
        for (int n : kSizes) {
            raw::RunResult par = raw::run_rawcc(
                prog.source, raw::MachineConfig::base(n),
                prog.check_array);
            double s = static_cast<double>(base.cycles) /
                       static_cast<double>(par.cycles);
            std::printf("  %-9.2f", s);
            std::fflush(stdout);
        }
        std::printf("   (seq RT %lld cycles)\n",
                    static_cast<long long>(base.cycles));
        auto it = kPaper.find(prog.name);
        if (it != kPaper.end()) {
            std::printf("%-14s", "  [paper]");
            for (double v : it->second) {
                if (v > 0)
                    std::printf("  %-9.2f", v);
                else
                    std::printf("  %-9s", "*");
            }
            std::printf("\n");
        }
    }
}

void
bm_compile_and_run(benchmark::State &state, const std::string &name,
                   int n)
{
    const raw::BenchmarkProgram &prog = raw::benchmark(name);
    for (auto _ : state) {
        raw::RunResult r = raw::run_rawcc(
            prog.source, raw::MachineConfig::base(n),
            prog.check_array);
        state.counters["cycles"] =
            static_cast<double>(r.cycles);
    }
}

} // namespace

int
main(int argc, char **argv)
{
    bool gbench = false;
    for (int i = 1; i < argc; i++)
        if (std::strcmp(argv[i], "--gbench") == 0)
            gbench = true;

    print_table();
    if (!gbench)
        return 0;

    for (const raw::BenchmarkProgram &prog : raw::benchmark_suite())
        for (int n : {1, 8, 32})
            benchmark::RegisterBenchmark(
                (prog.name + "/n" + std::to_string(n)).c_str(),
                [name = prog.name, n](benchmark::State &st) {
                    bm_compile_and_run(st, name, n);
                })
                ->Unit(benchmark::kMillisecond)
                ->Iterations(1);
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
