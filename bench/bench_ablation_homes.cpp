/**
 * @file
 * Ablation: scalar home assignment.  The paper's data partitioner
 * assigns home tiles round-robin and notes that "a more intelligent
 * algorithm would consider data usage pattern as well" (Section 3.3).
 * This bench compares the round-robin policy against the usage-aware
 * two-phase assignment (compile, observe producer/consumer tiles,
 * recompile with voted homes).
 */

#include <cstdio>

#include "harness/harness.hpp"

int
main()
{
    using namespace raw;
    std::printf("Ablation: scalar home assignment (16 tiles), "
                "cycles\n");
    std::printf("%-14s %-14s %-14s %-8s\n", "Benchmark",
                "round-robin", "usage-aware", "gain");
    for (const char *name :
         {"fpppp-kernel", "tomcatv", "jacobi", "cholesky"}) {
        const BenchmarkProgram &prog = benchmark(name);
        CompilerOptions rr;
        CompilerOptions smart;
        smart.smart_homes = true;
        RunResult a = run_rawcc(prog.source, MachineConfig::base(16),
                                prog.check_array, rr);
        RunResult b = run_rawcc(prog.source, MachineConfig::base(16),
                                prog.check_array, smart);
        if (a.check_words != b.check_words)
            std::printf("%-14s RESULT MISMATCH\n", name);
        std::printf("%-14s %-14lld %-14lld %+.1f%%\n", name,
                    static_cast<long long>(a.cycles),
                    static_cast<long long>(b.cycles),
                    100.0 * (static_cast<double>(a.cycles) -
                             static_cast<double>(b.cycles)) /
                        static_cast<double>(a.cycles));
    }
    std::printf("\nFinding: on this suite the gain is ~0%% — loop "
                "counters are control-replicated\nand remaining "
                "stitch traffic schedules off the critical path, so "
                "the paper's\nround-robin policy is adequate here.\n");
    return 0;
}
