/**
 * @file
 * Fault-injection campaign bench: sweep benchmarks × seeds × fault
 * channels through run_fault_campaign and require every point to
 * reproduce the clean reference (the static-ordering property under
 * adversarial timing).  Writes BENCH_faults.json (override with
 * --json-out) aggregating one campaign report per (bench, seed).
 *
 * Flags: --smoke runs the tiny CI configuration — 2 benchmarks ×
 * 3 seeds × 6 points each at 4 tiles, covering every channel (ctest
 * label fault-smoke); --scaling runs the large-mesh campaign — a
 * single 160-point sweep (10x the default) at 64 tiles on jacobi,
 * the fault-tolerance companion to the bench_wallclock scaling
 * study; --bench NAME restricts to one benchmark; --points N /
 * --seed S / --tiles N / --jobs N tune the full sweep.
 *
 * Exit status is nonzero if any campaign point failed, so the smoke
 * run doubles as a correctness gate.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "harness/campaign.hpp"
#include "harness/cli.hpp"
#include "harness/parallel.hpp"
#include "programs/programs.hpp"

namespace {

struct SweepSpec
{
    std::string bench;
    uint64_t seed = 0;
    int points = 0;
};

} // namespace

int
main(int argc, char **argv)
{
    std::string json_out = "BENCH_faults.json";
    std::string only_bench;
    bool smoke = false;
    bool scaling = false;
    int tiles = 4;
    int points = 16;
    int jobs = 0;
    uint64_t seed = 1;
    for (int i = 1; i < argc; i++) {
        if (std::strcmp(argv[i], "--json-out") == 0 && i + 1 < argc)
            json_out = argv[++i];
        else if (std::strcmp(argv[i], "--bench") == 0 && i + 1 < argc)
            only_bench = argv[++i];
        else if (std::strcmp(argv[i], "--points") == 0 && i + 1 < argc)
            points = static_cast<int>(raw::cli::parse_long_in(
                "bench_faults", argv[++i], "--points", 1, 4096,
                "a point count in [1, 4096]"));
        else if (std::strcmp(argv[i], "--tiles") == 0 && i + 1 < argc)
            tiles = static_cast<int>(raw::cli::parse_tiles(
                "bench_faults", argv[++i], "--tiles"));
        else if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc)
            jobs = static_cast<int>(raw::cli::parse_long_in(
                "bench_faults", argv[++i], "--jobs", 0, 1024,
                "a worker count in [0, 1024]"));
        else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc)
            seed = raw::cli::parse_u64("bench_faults", argv[++i],
                                       "--seed");
        else if (std::strcmp(argv[i], "--smoke") == 0)
            smoke = true;
        else if (std::strcmp(argv[i], "--scaling") == 0)
            scaling = true;
        else {
            std::fprintf(stderr, "unknown flag %s\n", argv[i]);
            return 2;
        }
    }

    std::vector<SweepSpec> sweeps;
    if (scaling) {
        // Large-mesh campaign: one benchmark, 10x the default point
        // count, on the 64-tile mesh from the scaling study.  Every
        // point must still reproduce the clean reference exactly.
        tiles = 64;
        sweeps.push_back({"jacobi", seed, 160});
    } else if (smoke) {
        // 2 benchmarks × 3 seeds × 6 points: point indices 1..5 cover
        // every channel {miss, route, dyn, jitter, all} once.
        for (const char *b : {"jacobi", "cholesky"})
            for (uint64_t s : {1, 2, 3})
                sweeps.push_back({b, s, 6});
    } else if (!only_bench.empty()) {
        sweeps.push_back({only_bench, seed, points});
    } else {
        for (const raw::BenchmarkProgram &prog :
             raw::benchmark_suite())
            sweeps.push_back({prog.name, seed, points});
    }

    std::vector<raw::CampaignReport> reports;
    int failed = 0;
    for (const SweepSpec &sw : sweeps) {
        raw::CampaignReport rep = raw::run_fault_campaign(
            sw.bench, raw::MachineConfig::base(tiles), sw.points,
            sw.seed, jobs);
        std::printf("%s\n", rep.summary().c_str());
        failed += rep.failed_points();
        reports.push_back(std::move(rep));
    }

    std::ofstream out(json_out);
    if (!out) {
        std::fprintf(stderr, "cannot open %s for writing\n",
                     json_out.c_str());
        return 1;
    }
    out << "{\n  \"table\": \"faults\",\n";
    out << "  \"smoke\": " << (smoke ? "true" : "false") << ",\n";
    out << "  \"scaling\": " << (scaling ? "true" : "false") << ",\n";
    out << "  \"tiles\": " << tiles << ",\n";
    out << "  \"failed_points\": " << failed << ",\n";
    out << "  \"campaigns\": [\n";
    for (size_t i = 0; i < reports.size(); i++) {
        // to_json() emits a complete object; indent it under the
        // aggregate array.
        std::string js = reports[i].to_json();
        std::string indented = "    ";
        for (size_t j = 0; j < js.size(); j++) {
            char c = js[j];
            if (c == '\n' && j + 1 < js.size())
                indented += "\n    ";
            else if (c != '\n')
                indented += c;
        }
        out << indented << (i + 1 < reports.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
    std::printf("wrote %s\n", json_out.c_str());

    if (failed > 0) {
        std::fprintf(stderr,
                     "fault campaign FAILED: %d point(s) diverged\n",
                     failed);
        return 1;
    }
    return 0;
}
